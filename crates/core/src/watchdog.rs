//! The anomaly watchdog: online detectors over the flight recorder's
//! timeline, with automatic diagnostic-bundle capture.
//!
//! The flight recorder (PR 6) turns the metrics registry into a timeline of
//! [`FlightSample`]s; this module watches that timeline *online* for the two
//! anomaly signatures the ROADMAP's observability work identified:
//!
//! * **Retry convoy** — a persistent per-sample abort trickle while commits
//!   continue: transactions fighting over the same hot rows re-certify in
//!   lockstep, so every sampling window shows fresh certification aborts
//!   (the TPC-B slow-mode signature).
//! * **Drain stall** — commits stop entirely while WAL fsyncs keep arriving
//!   at a slow heartbeat (the rare 15.5 s drain-tail relapse: ~1 Hz windows
//!   of two fsyncs each with zero committed transactions).
//!
//! Detection is a pure function over sample windows ([`detect`]), so the
//! thresholds are deterministically testable with hand-built snapshots; the
//! [`Watchdog`] wraps it in a sampling thread and, on first trigger per
//! anomaly kind, writes a [`DiagnosticBundle`]
//! to disk so the evidence is captured at the moment the anomaly happens.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tashkent_common::metrics::GaugeId;
use tashkent_common::{CounterId, MetricsRegistry};

use crate::bundle::DiagnosticBundle;
use crate::flight::FlightSample;

/// Which anomaly signature a detector matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// Persistent per-sample abort trickle while commits continue.
    RetryConvoy,
    /// Commits stopped entirely while WAL fsyncs keep a slow heartbeat.
    DrainStall,
}

impl AnomalyKind {
    /// Short label used in bundle file names (`bundle-<label>-…`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AnomalyKind::RetryConvoy => "convoy",
            AnomalyKind::DrainStall => "stall",
        }
    }
}

impl std::fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A detector's conclusion: what fired and the evidence window behind it.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// The matched signature.
    pub kind: AnomalyKind,
    /// Human-readable evidence summary (window deltas).
    pub detail: String,
    /// Number of consecutive samples that matched.
    pub window: usize,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} over {} consecutive samples: {}",
            self.kind, self.window, self.detail
        )
    }
}

/// Detector thresholds.  Every field is overridable from the environment
/// (see [`WatchdogConfig::from_env`]), so a soak run can tighten or relax
/// the watchdog without a rebuild.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Consecutive sample deltas that must all show the abort trickle
    /// (`WATCHDOG_CONVOY_WINDOW`, default 8).
    pub convoy_window: usize,
    /// Minimum aborted transactions per sample delta to count as trickle
    /// (`WATCHDOG_CONVOY_MIN_ABORTS`, default 1).
    pub convoy_min_aborts: u64,
    /// Consecutive sample deltas with zero commits that constitute a stall
    /// (`WATCHDOG_STALL_WINDOW`, default 4).
    pub stall_window: usize,
    /// Minimum WAL fsyncs across the stalled window — the heartbeat that
    /// distinguishes a drain stall from a merely idle cluster
    /// (`WATCHDOG_STALL_MIN_FSYNCS`, default 2).
    pub stall_min_fsyncs: u64,
    /// Samples of post-outage grace: the stall detector stands down while
    /// any retained sample shows [`GaugeId::NodesDown`] non-zero, and the
    /// sample buffer is sized to look this many samples past the stall
    /// window (`WATCHDOG_STALL_OUTAGE_GRACE`, default 24 — six seconds at
    /// the 250 ms interval, past the 5 s ordered-commit timeout that bounds
    /// how long a transaction caught mid-flight by a crash can keep the
    /// drain busy after the heal).
    pub stall_outage_grace: usize,
    /// Sampling interval of the watchdog's own recorder thread.
    pub interval: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            convoy_window: 8,
            convoy_min_aborts: 1,
            stall_window: 4,
            stall_min_fsyncs: 2,
            stall_outage_grace: 24,
            interval: Duration::from_millis(250),
        }
    }
}

impl WatchdogConfig {
    /// The default configuration with any `WATCHDOG_*` environment
    /// overrides applied (unparsable values are ignored).
    #[must_use]
    pub fn from_env() -> Self {
        fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
            std::env::var(name).ok()?.parse().ok()
        }
        let mut config = WatchdogConfig::default();
        if let Some(v) = env_parse::<usize>("WATCHDOG_CONVOY_WINDOW") {
            config.convoy_window = v.max(1);
        }
        if let Some(v) = env_parse::<u64>("WATCHDOG_CONVOY_MIN_ABORTS") {
            config.convoy_min_aborts = v.max(1);
        }
        if let Some(v) = env_parse::<usize>("WATCHDOG_STALL_WINDOW") {
            config.stall_window = v.max(1);
        }
        if let Some(v) = env_parse::<u64>("WATCHDOG_STALL_MIN_FSYNCS") {
            config.stall_min_fsyncs = v.max(1);
        }
        if let Some(v) = env_parse::<usize>("WATCHDOG_STALL_OUTAGE_GRACE") {
            config.stall_outage_grace = v;
        }
        if let Some(v) = env_parse::<u64>("WATCHDOG_INTERVAL_MS") {
            config.interval = Duration::from_millis(v.max(1));
        }
        config
    }

    /// How many samples the watchdog retains: the longer detector window
    /// plus one for the delta baseline, stretched to keep the stall
    /// detector's post-outage grace horizon in view.  Detectors still fire
    /// as soon as their own window fills — retention only bounds how far
    /// back the outage stand-down can see.
    #[must_use]
    pub fn samples_needed(&self) -> usize {
        self.convoy_window
            .max(self.stall_window + self.stall_outage_grace)
            + 1
    }
}

fn delta(samples: &[FlightSample], counter: CounterId, i: usize) -> u64 {
    samples[i]
        .snapshot
        .counter(counter)
        .saturating_sub(samples[i - 1].snapshot.counter(counter))
}

/// Runs both detectors over a flight timeline (oldest sample first) and
/// returns the first matching verdict, convoy checked first.
///
/// Pure: the watchdog thread calls this on its own samples, and tests call
/// it on hand-built timelines, so the thresholds behave identically in both.
#[must_use]
pub fn detect(samples: &[FlightSample], config: &WatchdogConfig) -> Option<Verdict> {
    detect_convoy(samples, config).or_else(|| detect_stall(samples, config))
}

/// The retry-convoy signature: every one of the last `convoy_window` sample
/// deltas aborted at least `convoy_min_aborts` transactions *and* committed
/// at least one — sustained conflict churn alongside progress, not a burst
/// and not an outage.
fn detect_convoy(samples: &[FlightSample], config: &WatchdogConfig) -> Option<Verdict> {
    let window = config.convoy_window.max(1);
    if samples.len() < window + 1 {
        return None;
    }
    let first = samples.len() - window;
    let mut aborted = 0u64;
    let mut committed = 0u64;
    for i in first..samples.len() {
        let aborts = delta(samples, CounterId::TxAborted, i);
        let commits = delta(samples, CounterId::TxCommitted, i);
        if aborts < config.convoy_min_aborts || commits == 0 {
            return None;
        }
        aborted += aborts;
        committed += commits;
    }
    Some(Verdict {
        kind: AnomalyKind::RetryConvoy,
        detail: format!(
            "{aborted} aborts across {window} consecutive samples \
             (>= {} per sample) while {committed} transactions committed",
            config.convoy_min_aborts
        ),
        window,
    })
}

/// The drain-stall signature: the last `stall_window` sample deltas all
/// committed zero transactions while the window as a whole still recorded
/// at least `stall_min_fsyncs` WAL fsyncs — the periodic-fsync heartbeat
/// that separates a wedged commit path from an idle cluster.
///
/// The detector stands down while fault injection touches the cluster, and
/// through a grace horizon after the heal: commits stopping during (or in
/// the aftermath of) an outage is *expected* behavior, and transactions
/// caught mid-flight by a crash may legitimately keep the drain busy for up
/// to the 5 s ordered-commit timeout after the heal.  Two pieces of
/// evidence, both checked over every retained sample (the buffer is sized
/// by [`WatchdogConfig::samples_needed`] to cover `stall_outage_grace`
/// samples past the stall window):
///
/// * **Level** — `GaugeId::NodesDown` non-zero in any sample: part of the
///   cluster is (or recently was) down.
/// * **Edge** — the `FaultTransitions` counter moved across the buffer: a
///   crash or recovery fired inside the lookback, even if the whole
///   crash/recover pair fell between two samples where the gauge never
///   shows it.
/// * **Apply progress** — `RemoteInstalls` advanced during the stall window
///   itself: the cluster is replaying a recovered replica's backlog (which
///   can outlive any fixed grace horizon), not wedged.  The genuine
///   pathology installs nothing — its applies keep aborting in a
///   deadlock-retry loop, so only the fsync heartbeat moves.
///
/// The judgment only applies to a whole, settled cluster — exactly where
/// the historical drain-tail pathology lived.
fn detect_stall(samples: &[FlightSample], config: &WatchdogConfig) -> Option<Verdict> {
    let window = config.stall_window.max(1);
    if samples.len() < window + 1 {
        return None;
    }
    let first = samples.len() - window;
    if samples
        .iter()
        .any(|s| s.snapshot.gauge(GaugeId::NodesDown).0 > 0)
    {
        return None;
    }
    let transitions = samples[samples.len() - 1]
        .snapshot
        .counter(CounterId::FaultTransitions)
        .saturating_sub(samples[0].snapshot.counter(CounterId::FaultTransitions));
    if transitions != 0 {
        return None;
    }
    let mut fsyncs = 0u64;
    let mut installs = 0u64;
    for i in first..samples.len() {
        if delta(samples, CounterId::TxCommitted, i) != 0 {
            return None;
        }
        fsyncs += delta(samples, CounterId::WalFsyncs, i);
        installs += delta(samples, CounterId::RemoteInstalls, i);
    }
    // Remote writesets landing during the window mean the cluster is
    // *applying* — a recovered replica replaying a backlog thousands of
    // versions deep (commits queue behind the catch-up, sometimes for
    // seconds past any grace horizon).  A wedged commit path installs
    // nothing: the historical drain-tail pathology was a deadlock-retry
    // loop whose applies kept aborting, so only the fsync heartbeat moved.
    if installs != 0 {
        return None;
    }
    if fsyncs < config.stall_min_fsyncs {
        return None;
    }
    Some(Verdict {
        kind: AnomalyKind::DrainStall,
        detail: format!(
            "commits stopped for {window} consecutive samples while \
             {fsyncs} WAL fsyncs kept the heartbeat"
        ),
        window,
    })
}

/// A fired anomaly together with where its evidence landed on disk (`None`
/// if writing the bundle failed; the verdict is kept either way).
#[derive(Debug, Clone)]
pub struct FiredAnomaly {
    /// The detector's verdict.
    pub verdict: Verdict,
    /// Path of the captured diagnostic bundle.
    pub bundle: Option<PathBuf>,
}

type CaptureFn = dyn Fn(&Verdict) -> DiagnosticBundle + Send + Sync;

struct WatchdogShared {
    fired: Mutex<Vec<FiredAnomaly>>,
    stop: AtomicBool,
}

/// A background thread sampling a [`MetricsRegistry`] and running the
/// anomaly detectors online.  On the first trigger of each [`AnomalyKind`]
/// it captures a diagnostic bundle (via the closure handed to
/// [`Watchdog::start`], typically [`Cluster::diagnostic_bundle`]) and writes
/// it under the bundle directory.
///
/// Dropping the watchdog stops and joins the thread.
///
/// [`Cluster::diagnostic_bundle`]: crate::Cluster::diagnostic_bundle
pub struct Watchdog {
    shared: Arc<WatchdogShared>,
    handle: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watchdog")
            .field("fired", &self.shared.fired.lock().len())
            .finish()
    }
}

impl Watchdog {
    /// Starts the watchdog thread over `registry`.  `capture` builds the
    /// diagnostic bundle when a detector fires; the watchdog writes it to
    /// the default bundle directory (see
    /// [`DiagnosticBundle::write_default`]).
    #[must_use]
    pub fn start(
        registry: Arc<MetricsRegistry>,
        config: WatchdogConfig,
        capture: Box<CaptureFn>,
    ) -> Self {
        let shared = Arc::new(WatchdogShared {
            fired: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = thread::Builder::new()
            .name("anomaly-watchdog".into())
            .spawn(move || {
                let started = Instant::now();
                let keep = config.samples_needed();
                let mut samples: VecDeque<FlightSample> = VecDeque::with_capacity(keep);
                let mut convoy_fired = false;
                let mut stall_fired = false;
                let tick = config
                    .interval
                    .min(Duration::from_millis(10))
                    .max(Duration::from_millis(1));
                let mut next_sample = started + config.interval;
                while !thread_shared.stop.load(Ordering::Relaxed) {
                    thread::sleep(tick);
                    if Instant::now() < next_sample {
                        continue;
                    }
                    next_sample += config.interval;
                    if samples.len() == keep {
                        samples.pop_front();
                    }
                    samples.push_back(FlightSample {
                        at: started.elapsed(),
                        snapshot: registry.snapshot(),
                    });
                    let timeline: Vec<FlightSample> = samples.iter().cloned().collect();
                    let Some(verdict) = detect(&timeline, &config) else {
                        continue;
                    };
                    let already = match verdict.kind {
                        AnomalyKind::RetryConvoy => std::mem::replace(&mut convoy_fired, true),
                        AnomalyKind::DrainStall => std::mem::replace(&mut stall_fired, true),
                    };
                    if already {
                        continue;
                    }
                    let bundle = capture(&verdict);
                    let path = bundle.write_default().ok();
                    thread_shared
                        .fired
                        .lock()
                        .push(FiredAnomaly { verdict, bundle: path });
                }
            })
            .expect("spawning the anomaly-watchdog thread");
        Watchdog {
            shared,
            handle: Some(handle),
        }
    }

    /// The anomalies fired so far, oldest first.
    #[must_use]
    pub fn fired(&self) -> Vec<FiredAnomaly> {
        self.shared.fired.lock().clone()
    }

    /// Stops the watchdog thread and returns everything that fired.
    #[must_use]
    pub fn stop(mut self) -> Vec<FiredAnomaly> {
        self.stop_thread();
        self.shared.fired.lock().drain(..).collect()
    }

    fn stop_thread(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop_thread();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a deterministic flight timeline by mutating one registry
    /// between snapshots — the same shape the watchdog thread sees, with
    /// no threads and no clocks involved.
    struct TimelineBuilder {
        registry: MetricsRegistry,
        samples: Vec<FlightSample>,
    }

    impl TimelineBuilder {
        fn new() -> Self {
            let registry = MetricsRegistry::enabled();
            let samples = vec![FlightSample {
                at: Duration::ZERO,
                snapshot: registry.snapshot(),
            }];
            TimelineBuilder { registry, samples }
        }

        /// One sampling interval in which the given counter deltas landed.
        fn tick(&mut self, commits: u64, aborts: u64, fsyncs: u64) -> &mut Self {
            self.registry.add(CounterId::TxCommitted, commits);
            self.registry.add(CounterId::TxAborted, aborts);
            self.registry.add(CounterId::WalFsyncs, fsyncs);
            self.samples.push(FlightSample {
                at: Duration::from_millis(250 * self.samples.len() as u64),
                snapshot: self.registry.snapshot(),
            });
            self
        }
    }

    fn config() -> WatchdogConfig {
        WatchdogConfig {
            convoy_window: 4,
            convoy_min_aborts: 1,
            stall_window: 3,
            stall_min_fsyncs: 2,
            stall_outage_grace: 4,
            interval: Duration::from_millis(250),
        }
    }

    #[test]
    fn convoy_detector_fires_on_a_persistent_abort_trickle() {
        let mut t = TimelineBuilder::new();
        // Healthy warm-up, then four consecutive windows that each commit
        // and abort — the synthetic retry convoy.
        t.tick(50, 0, 1).tick(48, 0, 1);
        for _ in 0..4 {
            t.tick(30, 5, 1);
        }
        let verdict = detect(&t.samples, &config()).expect("convoy must fire");
        assert_eq!(verdict.kind, AnomalyKind::RetryConvoy);
        assert_eq!(verdict.window, 4);
        assert!(verdict.detail.contains("20 aborts"), "{}", verdict.detail);
    }

    #[test]
    fn convoy_detector_ignores_a_single_abort_burst() {
        let mut t = TimelineBuilder::new();
        t.tick(50, 0, 1).tick(10, 40, 1).tick(50, 0, 1).tick(50, 0, 1).tick(50, 0, 1);
        assert!(detect(&t.samples, &config()).is_none());
    }

    #[test]
    fn stall_detector_fires_when_commits_stop_but_fsyncs_heartbeat() {
        let mut t = TimelineBuilder::new();
        // Load, then the drain-tail signature: zero commits per window with
        // the slow fsync heartbeat still ticking.
        t.tick(50, 1, 4).tick(50, 0, 4);
        t.tick(0, 0, 1).tick(0, 0, 0).tick(0, 0, 1);
        let verdict = detect(&t.samples, &config()).expect("stall must fire");
        assert_eq!(verdict.kind, AnomalyKind::DrainStall);
        assert_eq!(verdict.window, 3);
        assert!(verdict.detail.contains("2 WAL fsyncs"), "{}", verdict.detail);
    }

    #[test]
    fn stall_detector_stands_down_while_fault_injection_holds_nodes_down() {
        let mut t = TimelineBuilder::new();
        t.tick(50, 1, 4).tick(50, 0, 4);
        // A certifier shard group goes down: commits stop, fsyncs heartbeat —
        // the stall signature, but explained by the outage.
        t.registry.gauge_set(GaugeId::NodesDown, 2);
        t.tick(0, 0, 1).tick(0, 0, 1).tick(0, 0, 1);
        assert!(
            detect(&t.samples, &config()).is_none(),
            "outage windows must not read as drain stalls"
        );
        // Nodes recover.  While the outage samples are still retained the
        // grace holds (the drain may be working off transactions the crash
        // caught mid-flight) …
        t.registry.gauge_set(GaugeId::NodesDown, 0);
        t.tick(0, 0, 1).tick(0, 0, 1).tick(0, 0, 1).tick(0, 0, 1);
        assert!(
            detect(&t.samples, &config()).is_none(),
            "the post-outage grace horizon must hold while outage samples remain"
        );
        // … but once the buffer has evicted the outage (all retained samples
        // show a whole cluster), the same signature is a real stall again.
        let settled = &t.samples[6..];
        let verdict = detect(settled, &config()).expect("post-grace stall must fire");
        assert_eq!(verdict.kind, AnomalyKind::DrainStall);
    }

    #[test]
    fn stall_detector_stands_down_after_a_sub_sample_crash_recover_pair() {
        let mut t = TimelineBuilder::new();
        t.tick(50, 1, 4).tick(50, 0, 4);
        // A crash/recover pair lands entirely between two samples: the
        // NodesDown gauge reads zero at every sample instant, but the
        // transition counter moved — and the aftermath (clients waiting out
        // their outage timeouts) shows the stall signature.
        t.registry.incr(CounterId::FaultTransitions);
        t.registry.incr(CounterId::FaultTransitions);
        t.tick(0, 0, 1).tick(0, 0, 1).tick(0, 0, 1);
        assert!(
            detect(&t.samples, &config()).is_none(),
            "a fault transition inside the lookback must suppress the stall"
        );
        // Once the transition ages out of the retained buffer, the same
        // signature fires.
        t.tick(0, 0, 1).tick(0, 0, 1).tick(0, 0, 1).tick(0, 0, 1);
        let settled = &t.samples[6..];
        let verdict = detect(settled, &config()).expect("post-grace stall must fire");
        assert_eq!(verdict.kind, AnomalyKind::DrainStall);
    }

    #[test]
    fn stall_detector_stands_down_while_catch_up_applies_make_progress() {
        let mut t = TimelineBuilder::new();
        t.tick(50, 1, 4).tick(50, 0, 4);
        // A recovered replica replays its backlog: commits queue behind the
        // catch-up (zero per window) while remote installs pour in.
        for _ in 0..4 {
            t.registry.add(CounterId::RemoteInstalls, 500);
            t.tick(0, 0, 3);
        }
        assert!(
            detect(&t.samples, &config()).is_none(),
            "a catch-up replay is apply progress, not a wedged commit path"
        );
        // The backlog drains, installs go quiet, commits still zero — now
        // it is the real signature.
        t.tick(0, 0, 1).tick(0, 0, 1).tick(0, 0, 1);
        let verdict = detect(&t.samples, &config()).expect("post-catch-up stall must fire");
        assert_eq!(verdict.kind, AnomalyKind::DrainStall);
    }

    #[test]
    fn stall_detector_ignores_an_idle_cluster_without_fsyncs() {
        let mut t = TimelineBuilder::new();
        t.tick(50, 0, 4);
        for _ in 0..5 {
            t.tick(0, 0, 0); // idle: no commits, but no heartbeat either
        }
        assert!(detect(&t.samples, &config()).is_none());
    }

    #[test]
    fn detectors_need_a_full_window_before_firing() {
        let mut t = TimelineBuilder::new();
        t.tick(30, 5, 1).tick(30, 5, 1); // trickle, but only two windows
        assert!(detect(&t.samples, &config()).is_none());
    }

    #[test]
    fn watchdog_thread_detects_a_live_synthetic_stall_and_writes_a_bundle() {
        let registry = Arc::new(MetricsRegistry::enabled());
        // Some history so TxCommitted is non-trivial, then silence.
        registry.add(CounterId::TxCommitted, 100);
        let dir = std::env::temp_dir().join(format!(
            "tashkent-watchdog-test-{}",
            std::process::id()
        ));
        let capture_dir = dir.clone();
        let watchdog = Watchdog::start(
            Arc::clone(&registry),
            WatchdogConfig {
                convoy_window: 64, // effectively off for this test
                convoy_min_aborts: 1,
                stall_window: 3,
                stall_min_fsyncs: 2,
                stall_outage_grace: 4,
                interval: Duration::from_millis(5),
            },
            Box::new(move |verdict| {
                let bundle = DiagnosticBundle {
                    kind: verdict.kind.label().to_owned(),
                    detail: verdict.to_string(),
                    snapshot: MetricsRegistry::enabled().snapshot(),
                    traces: Vec::new(),
                    events: Vec::new(),
                    progress: vec![(0, 7)],
                };
                // Redirect this test's bundle away from the shared default
                // directory by writing it ourselves as well.
                let _ = bundle.write_to(&capture_dir);
                bundle
            }),
        );
        // Keep the fsync heartbeat alive while commits stay frozen.
        for _ in 0..60 {
            registry.incr(CounterId::WalFsyncs);
            thread::sleep(Duration::from_millis(5));
            if !watchdog.fired().is_empty() {
                break;
            }
        }
        let fired = watchdog.stop();
        assert!(
            fired.iter().any(|f| f.verdict.kind == AnomalyKind::DrainStall),
            "stall never fired: {fired:?}"
        );
        let written: Vec<_> = std::fs::read_dir(&dir)
            .expect("bundle directory exists")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        assert!(!written.is_empty(), "no bundle written to {}", dir.display());
        let bundle = DiagnosticBundle::read_from(&written[0]).expect("bundle round-trips");
        assert_eq!(bundle.kind, "stall");
        assert_eq!(bundle.progress, vec![(0, 7)]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
