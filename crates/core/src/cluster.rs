//! The replicated cluster: replicas + certifier group + client sessions.

use std::sync::Arc;

use tashkent_certifier::{
    Certifier, CertifierConfig, CertifierNodeId, CertifierStats, ShardedCertifier,
    ShardedCertifierConfig,
};
use tashkent_common::{
    metrics::GaugeId, ClusterConfig, CommitPathTrace, Error, Event, MetricsRegistry,
    MetricsSnapshot, ReplicaId, Result, ShardId, SystemKind, TableId, Version,
};
use tashkent_net::ClusterNet;
use tashkent_proxy::{CertifierHandle, Proxy, ProxyStats, ProxyTransaction};
use tashkent_storage::disk::DiskConfig;

use crate::bundle::DiagnosticBundle;
use crate::replica::ReplicaNode;
use crate::watchdog::{Watchdog, WatchdogConfig};

/// Aggregate statistics of a cluster.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Per-replica proxy statistics.
    pub proxies: Vec<ProxyStats>,
    /// Certifier statistics.
    pub certifier: Option<CertifierStats>,
    /// Total committed update transactions across all replicas.
    pub update_commits: u64,
    /// Total committed read-only transactions.
    pub read_only_commits: u64,
    /// Total aborted transactions (local, certifier and engine aborts).
    pub aborts: u64,
}

/// A running replicated database cluster.
///
/// The proxies reach the certifier the way `ClusterConfig::transport`
/// says: directly in-process, or across the wire of a
/// [`ClusterNet`] (loopback or TCP).  Everything
/// else — fault injection, trimming, metrics, the event journal — is
/// transport-agnostic.
pub struct Cluster {
    config: ClusterConfig,
    /// The colocated (in-process) handle: control plane and cluster-level
    /// inspection always use this, wire or no wire.
    certifier: CertifierHandle,
    replicas: Vec<Arc<ReplicaNode>>,
    metrics: Arc<MetricsRegistry>,
    /// The cluster's network when the transport is networked.  Declared
    /// last: sessions close after the replicas that used them are gone.
    net: Option<ClusterNet>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("system", &self.config.system)
            .field("replicas", &self.replicas.len())
            .finish()
    }
}

impl Cluster {
    /// Builds a cluster from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn new(config: ClusterConfig) -> Result<Self> {
        config.validate().map_err(Error::InvalidConfig)?;
        // One registry for the whole cluster: every replica engine, proxy and
        // certifier shard reports into it.
        let metrics = Arc::new(MetricsRegistry::enabled());
        let certifier_config = CertifierConfig {
            nodes: config.certifiers,
            disk: DiskConfig {
                fsync_latency: config.service_times.fsync,
                fsync_jitter: config.service_times.fsync_jitter,
                contention_latency: std::time::Duration::ZERO,
                sleep: false,
            },
            durable: config.system.certifier_durable(),
            forced_abort_rate: config.forced_abort_rate,
            seed: 0x7A5B_1001,
            metrics: Arc::clone(&metrics),
            batch: true,
        };
        let certifier: CertifierHandle = if config.certifier_shards > 1 {
            Arc::new(ShardedCertifier::new(ShardedCertifierConfig {
                shards: config.certifier_shards,
                base: certifier_config,
            }))
            .into()
        } else {
            Arc::new(Certifier::new(certifier_config)).into()
        };
        // Networked transports put a wire between every proxy and the
        // certifier: the data plane of each replica's handle crosses a
        // session, the control plane stays on the in-process handle.
        let net = if config.transport.is_networked() {
            Some(ClusterNet::start(
                config.transport,
                certifier.clone(),
                config.replicas,
                Arc::clone(&metrics),
            )?)
        } else {
            None
        };
        let replicas = (0..config.replicas)
            .map(|i| {
                let handle = match &net {
                    Some(net) => net.replica_handle(i),
                    None => certifier.clone(),
                };
                Arc::new(ReplicaNode::new(
                    ReplicaId(i as u32),
                    &config,
                    handle,
                    Arc::clone(&metrics),
                ))
            })
            .collect();
        Ok(Cluster {
            config,
            certifier,
            replicas,
            metrics,
            net,
        })
    }

    /// The network under this cluster, when the transport is networked.
    #[must_use]
    pub fn net(&self) -> Option<&ClusterNet> {
        self.net.as_ref()
    }

    /// Severs the loopback link between one replica's proxy and the
    /// certifier.  Returns `false` (no-op) unless the cluster runs on the
    /// loopback transport.
    pub fn sever_certifier_link(&self, replica: usize) -> bool {
        self.net
            .as_ref()
            .is_some_and(|net| net.sever_certifier_link(replica))
    }

    /// Heals one replica's loopback link to the certifier.
    pub fn heal_certifier_link(&self, replica: usize) -> bool {
        self.net
            .as_ref()
            .is_some_and(|net| net.heal_certifier_link(replica))
    }

    /// Severs only one direction of a replica's link to the certifier
    /// (half-open link): `to_certifier = true` drops replica→certifier
    /// bytes, `false` drops certifier→replica bytes.
    pub fn sever_certifier_link_one_way(&self, replica: usize, to_certifier: bool) -> bool {
        self.net
            .as_ref()
            .is_some_and(|net| net.sever_certifier_link_one_way(replica, to_certifier))
    }

    /// Enables seeded random connection resets on the loopback network
    /// (`rate = 0.0` disables).  A no-op off the loopback transport.
    pub fn set_packet_loss(&self, seed: u64, rate: f64) -> bool {
        self.net
            .as_ref()
            .is_some_and(|net| net.set_packet_loss(seed, rate))
    }

    /// Severs every replica's link to the certifier — a full
    /// replica↔certifier partition.
    pub fn partition_certifier(&self) -> bool {
        self.net
            .as_ref()
            .is_some_and(ClusterNet::partition_certifier)
    }

    /// Heals every severed link.
    pub fn heal_all_links(&self) -> bool {
        self.net.as_ref().is_some_and(ClusterNet::heal_all_links)
    }

    /// The cluster-wide metrics registry (shared by every replica engine,
    /// proxy and certifier shard).
    #[must_use]
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// A consistent snapshot of every cluster-wide counter, gauge and
    /// per-stage latency histogram.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The most recent commit-path traces (one per committed transaction,
    /// newest last, bounded ring).
    #[must_use]
    pub fn recent_traces(&self) -> Vec<CommitPathTrace> {
        self.metrics.recent_traces()
    }

    /// Starts a [`FlightRecorder`](crate::flight::FlightRecorder) sampling
    /// this cluster's registry every `interval` into a bounded ring.
    #[must_use]
    pub fn start_flight_recorder(&self, interval: std::time::Duration) -> crate::FlightRecorder {
        crate::FlightRecorder::start(
            self.metrics(),
            interval,
            crate::flight::DEFAULT_SAMPLE_CAPACITY,
        )
    }

    /// The merged event-journal timeline across every component, causally
    /// ordered on the registry's clock.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.metrics.events()
    }

    /// Captures a [`DiagnosticBundle`] of the cluster's current
    /// observability state: the metrics snapshot, the recent commit-path
    /// traces, the merged event journal, and the per-replica progress
    /// vector.  `kind` becomes part of the bundle file name (the watchdog
    /// passes `convoy` / `stall`, the fault harness `oracle`).
    #[must_use]
    pub fn diagnostic_bundle(&self, kind: &str, detail: &str) -> DiagnosticBundle {
        DiagnosticBundle {
            kind: kind.to_owned(),
            detail: detail.to_owned(),
            snapshot: self.metrics.snapshot(),
            traces: self.metrics.recent_traces(),
            events: self.metrics.events(),
            progress: self
                .replicas
                .iter()
                .map(|r| (r.id().value(), r.version().0))
                .collect(),
        }
    }

    /// Starts an anomaly [`Watchdog`] over this cluster's registry.  When a
    /// detector fires, the watchdog captures a diagnostic bundle of the
    /// cluster via [`Cluster::diagnostic_bundle`] and writes it under the
    /// bundle directory.
    #[must_use]
    pub fn start_watchdog(&self, config: WatchdogConfig) -> Watchdog {
        let replicas: Vec<Arc<ReplicaNode>> = self.replicas.iter().map(Arc::clone).collect();
        let metrics = self.metrics();
        let capture_metrics = Arc::clone(&metrics);
        Watchdog::start(
            metrics,
            config,
            Box::new(move |verdict| DiagnosticBundle {
                kind: verdict.kind.label().to_owned(),
                detail: verdict.to_string(),
                snapshot: capture_metrics.snapshot(),
                traces: capture_metrics.recent_traces(),
                events: capture_metrics.events(),
                progress: replicas
                    .iter()
                    .map(|r| (r.id().value(), r.version().0))
                    .collect(),
            }),
        )
    }

    /// The cluster's configuration.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The replication design this cluster runs.
    #[must_use]
    pub fn system(&self) -> SystemKind {
        self.config.system
    }

    /// Number of replicas.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// A handle to the shared certification service (single or sharded,
    /// depending on `certifier_shards` in the configuration).
    #[must_use]
    pub fn certifier(&self) -> CertifierHandle {
        self.certifier.clone()
    }

    /// Access to one replica node (for fault injection and inspection).
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    #[must_use]
    pub fn replica(&self, replica: usize) -> Arc<ReplicaNode> {
        Arc::clone(&self.replicas[replica])
    }

    /// Registers a table on every replica and returns its identifier.
    pub fn create_table(&self, name: &str, columns: &[&str]) -> TableId {
        for replica in &self.replicas {
            replica.create_table(name, columns);
        }
        self.replicas[0]
            .database()
            .table_id(name)
            .expect("table was just created")
    }

    /// Seals every replica's current state as its recovery baseline.
    /// Workload loaders call this after bulk-loading the initial database so
    /// that crash recovery — which replays the WAL, the dumps and the
    /// certifier log, none of which the bulk load went through — starts from
    /// the loaded state instead of an empty one.
    ///
    /// Equivalent to [`Cluster::checkpoint`]; kept as the historical name of
    /// the test hook this subsystem grew out of.
    pub fn seal_baseline(&self) {
        let _ = self.checkpoint();
    }

    /// Seals a durable checkpoint on every live replica and every certifier
    /// shard: a versioned, checksummed image behind an atomic manifest flip.
    /// Crashed replicas are skipped.  Returns the version stamped on the
    /// certifier's images.
    pub fn checkpoint(&self) -> Version {
        crate::trimmer::seal_checkpoints(&self.certifier, &self.replicas, &self.metrics)
    }

    /// The cluster's current truncation watermark: the minimum of every live
    /// replica's installed version, every replica's newest sealed checkpoint
    /// (crashed ones included — they restart from it), and the certifier's
    /// newest sealed checkpoint.  [`Version::ZERO`] until everyone has sealed
    /// at least once.
    #[must_use]
    pub fn watermark(&self) -> Version {
        crate::trimmer::watermark(&self.certifier, &self.replicas)
    }

    /// Truncates the certifier shard logs and every live replica's WAL below
    /// the current watermark.  Returns `(certifier entries, WAL records)`
    /// dropped.
    ///
    /// # Errors
    ///
    /// Propagates certifier group or WAL rewrite failures.
    pub fn trim(&self) -> Result<(usize, usize)> {
        crate::trimmer::trim(&self.certifier, &self.replicas, &self.metrics)
    }

    /// The truncation floor of the certifier's ordered log (highest version
    /// trimmed away so far; [`Version::ZERO`] before any trim).
    #[must_use]
    pub fn truncation_floor(&self) -> Version {
        self.certifier.truncation_floor()
    }

    /// Total retained entries across the certifier's shard logs
    /// (bounded-memory assertions).
    #[must_use]
    pub fn certifier_log_len(&self) -> usize {
        self.certifier.log_len()
    }

    /// Total bytes across every replica's write-ahead log
    /// (bounded-memory assertions).
    #[must_use]
    pub fn wal_bytes(&self) -> u64 {
        self.replicas.iter().map(|r| r.wal_size()).sum()
    }

    /// Starts a background [`Trimmer`](crate::trimmer::Trimmer) that seals
    /// checkpoints and advances the truncation watermark every `interval`.
    #[must_use]
    pub fn start_trimmer(&self, interval: std::time::Duration) -> crate::trimmer::Trimmer {
        crate::trimmer::Trimmer::start(
            self.certifier.clone(),
            self.replicas.iter().map(Arc::clone).collect(),
            self.metrics(),
            interval,
        )
    }

    /// A client session bound to one replica (clients always talk to a single
    /// replica, as in the paper's model).
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    #[must_use]
    pub fn session(&self, replica: usize) -> Session {
        Session {
            proxy: self.replicas[replica].proxy(),
        }
    }

    /// The global system version at the certifier.
    #[must_use]
    pub fn system_version(&self) -> Version {
        self.certifier.system_version()
    }

    /// Brings every (non-crashed) replica up to date with the certifier
    /// (each proxy performs a bounded-staleness refresh).
    ///
    /// # Errors
    ///
    /// Fails if the certifier majority is unavailable.
    pub fn sync_all(&self) -> Result<usize> {
        let mut applied = 0;
        for replica in &self.replicas {
            if !replica.is_crashed() {
                applied += replica.proxy().refresh()?;
            }
        }
        Ok(applied)
    }

    /// Crashes one replica's database process (fault injection).
    ///
    /// Equivalent to `cluster.replica(replica).crash()`; exposed directly on
    /// the cluster so fault schedules address replicas and certifier nodes
    /// through one surface.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn crash_replica(&self, replica: usize) {
        self.replicas[replica].crash();
        self.refresh_nodes_down();
    }

    /// Recovers one crashed replica following its system's procedure (WAL
    /// redo or dump restore, then certifier catch-up).  Returns the number of
    /// writesets re-applied during catch-up.
    ///
    /// # Errors
    ///
    /// As for [`ReplicaNode::recover`].
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn recover_replica(&self, replica: usize) -> Result<usize> {
        let applied = self.replicas[replica].recover();
        self.refresh_nodes_down();
        applied
    }

    /// Crashes one certifier node.
    pub fn crash_certifier_node(&self, node: CertifierNodeId) {
        self.certifier.crash_node(node);
        self.refresh_nodes_down();
    }

    /// Recovers one certifier node via state transfer.
    ///
    /// # Errors
    ///
    /// Fails if no up node can donate its log.
    pub fn recover_certifier_node(&self, node: CertifierNodeId) -> Result<()> {
        let recovered = self.certifier.recover_node(node);
        self.refresh_nodes_down();
        recovered
    }

    /// Crashes one node of one certifier shard's replicated group (the
    /// unsharded certifier is addressed as shard 0).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn crash_certifier_shard_node(&self, shard: ShardId, node: CertifierNodeId) {
        self.certifier.crash_shard_node(shard, node);
        self.refresh_nodes_down();
    }

    /// Recovers one node of one certifier shard's group via state transfer.
    ///
    /// # Errors
    ///
    /// Fails if the shard has no up node to donate its log.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn recover_certifier_shard_node(
        &self,
        shard: ShardId,
        node: CertifierNodeId,
    ) -> Result<()> {
        let recovered = self.certifier.recover_shard_node(shard, node);
        self.refresh_nodes_down();
        recovered
    }

    /// Recomputes the [`GaugeId::NodesDown`] gauge from live membership
    /// (crashed replicas plus crashed certifier shard-group members) and
    /// bumps the [`CounterId::FaultTransitions`] edge counter.  Called after
    /// every crash/recover on the cluster's fault surface, so the flight
    /// recorder (and the anomaly watchdog reading it) can tell an outage
    /// window — where commits legitimately stop — from a wedged commit path
    /// on a whole cluster.  The counter matters for crash/recover pairs
    /// short enough to fall entirely between two flight samples: the gauge
    /// never shows them, the counter delta does.
    ///
    /// [`CounterId::FaultTransitions`]: tashkent_common::metrics::CounterId::FaultTransitions
    fn refresh_nodes_down(&self) {
        let replicas_down = self.replicas.iter().filter(|r| r.is_crashed()).count();
        let log = self.certifier.stats().log;
        let certifier_down = log.nodes_total.saturating_sub(log.nodes_up);
        self.metrics
            .gauge_set(GaugeId::NodesDown, (replicas_down + certifier_down) as i64);
        self.metrics
            .incr(tashkent_common::metrics::CounterId::FaultTransitions);
    }

    /// Aggregated statistics across the cluster.
    #[must_use]
    pub fn stats(&self) -> ClusterStats {
        let proxies: Vec<ProxyStats> = self
            .replicas
            .iter()
            .map(|r| r.proxy().stats())
            .collect();
        let update_commits = proxies.iter().map(|p| p.update_commits).sum();
        let read_only_commits = proxies.iter().map(|p| p.read_only_commits).sum();
        let aborts = proxies
            .iter()
            .map(|p| p.local_certification_aborts + p.certifier_aborts + p.engine_aborts)
            .sum();
        ClusterStats {
            proxies,
            certifier: Some(self.certifier.stats()),
            update_commits,
            read_only_commits,
            aborts,
        }
    }

    /// Checks that every non-crashed replica is a consistent prefix of the
    /// certifier's log: its version never exceeds the system version, and
    /// after [`Cluster::sync_all`] all replicas hold identical versions.
    ///
    /// Returns the list of replica versions.
    #[must_use]
    pub fn replica_versions(&self) -> Vec<(ReplicaId, Version)> {
        self.replicas
            .iter()
            .map(|r| (r.id(), r.version()))
            .collect()
    }
}

/// A client session bound to one replica.
pub struct Session {
    proxy: Proxy,
}

impl Session {
    /// Begins a transaction on this session's replica.
    #[must_use]
    pub fn begin(&self) -> ProxyTransaction {
        self.proxy.begin()
    }

    /// The replica this session talks to.
    #[must_use]
    pub fn replica(&self) -> ReplicaId {
        self.proxy.replica()
    }

    /// The proxy behind this session.
    #[must_use]
    pub fn proxy(&self) -> &Proxy {
        &self.proxy
    }
}

#[cfg(test)]
mod tests {
    use tashkent_common::Value;

    use super::*;

    fn small(system: SystemKind) -> Cluster {
        Cluster::new(ClusterConfig::small(system)).unwrap()
    }

    #[test]
    fn networked_transports_replicate_the_same_update() {
        use tashkent_common::TransportKind;
        for transport in [TransportKind::Loopback, TransportKind::Tcp] {
            let mut config = ClusterConfig::small(SystemKind::TashkentApi);
            config.transport = transport;
            let cluster = Cluster::new(config).unwrap();
            assert!(cluster.net().is_some());
            let t = cluster.create_table("kv", &["v"]);
            let tx = cluster.session(0).begin();
            tx.insert(t, 1, vec![("v".into(), Value::Int(9))]).unwrap();
            tx.commit().unwrap();
            cluster.sync_all().unwrap();
            for r in 0..cluster.replica_count() {
                let tx = cluster.session(r).begin();
                let row = tx.read(t, 1).unwrap().unwrap();
                assert_eq!(row.get("v"), Some(&Value::Int(9)), "over {transport}");
                tx.commit().unwrap();
            }
            assert_eq!(cluster.system_version(), Version(1));
            let snapshot = cluster.metrics_snapshot();
            assert!(
                snapshot.counter(tashkent_common::CounterId::NetMessages) > 0,
                "commits over {transport} must cross the wire"
            );
        }
    }

    #[test]
    fn loopback_partitions_sever_and_heal_through_the_cluster() {
        use tashkent_common::TransportKind;
        let mut config = ClusterConfig::small(SystemKind::TashkentMw);
        config.transport = TransportKind::Loopback;
        let cluster = Cluster::new(config).unwrap();
        let t = cluster.create_table("kv", &["v"]);
        let tx = cluster.session(0).begin();
        tx.insert(t, 1, vec![("v".into(), Value::Int(1))]).unwrap();
        tx.commit().unwrap();

        assert!(cluster.partition_certifier());
        let tx = cluster.session(0).begin();
        tx.update(t, 1, vec![("v".into(), Value::Int(2))]).unwrap();
        let err = tx.commit().unwrap_err();
        assert!(err.is_unavailable(), "partitioned commit fails fast: {err}");

        assert!(cluster.heal_all_links());
        let net = cluster.net().unwrap();
        for r in 0..cluster.replica_count() {
            net.client(r)
                .wait_connected(std::time::Duration::from_secs(2))
                .unwrap();
        }
        let tx = cluster.session(0).begin();
        tx.update(t, 1, vec![("v".into(), Value::Int(3))]).unwrap();
        tx.commit().unwrap();
        cluster.sync_all().unwrap();
        assert!(cluster
            .events()
            .iter()
            .any(|e| e.kind == tashkent_common::EventKind::LinkFault));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut config = ClusterConfig::small(SystemKind::Base);
        config.replicas = 0;
        assert!(matches!(
            Cluster::new(config),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn all_systems_replicate_a_simple_update() {
        for system in SystemKind::ALL {
            let cluster = small(system);
            let t = cluster.create_table("kv", &["v"]);
            let tx = cluster.session(0).begin();
            tx.insert(t, 1, vec![("v".into(), Value::Int(7))]).unwrap();
            tx.commit().unwrap();
            cluster.sync_all().unwrap();
            for r in 0..cluster.replica_count() {
                let tx = cluster.session(r).begin();
                let row = tx.read(t, 1).unwrap().unwrap();
                assert_eq!(row.get("v"), Some(&Value::Int(7)), "system {system}");
                tx.commit().unwrap();
            }
            assert_eq!(cluster.system_version(), Version(1));
            let versions = cluster.replica_versions();
            assert!(versions.iter().all(|(_, v)| *v == Version(1)));
            let stats = cluster.stats();
            assert_eq!(stats.update_commits, 1);
            assert!(stats.read_only_commits >= 2);
        }
    }

    #[test]
    fn sharded_certifier_cluster_replicates_and_converges() {
        for system in SystemKind::ALL {
            let mut config = ClusterConfig::small(system);
            config.certifier_shards = 4;
            let cluster = Cluster::new(config).unwrap();
            assert!(cluster.certifier().as_sharded().is_some());
            let t = cluster.create_table("kv", &["v"]);
            // Mix single- and multi-shard writesets from both replicas.
            for i in 0..6 {
                let tx = cluster.session((i % 2) as usize).begin();
                tx.insert(t, i, vec![("v".into(), Value::Int(i))]).unwrap();
                if i % 2 == 0 {
                    tx.insert(t, 100 + i, vec![("v".into(), Value::Int(i))])
                        .unwrap();
                }
                tx.commit().unwrap();
            }
            cluster.sync_all().unwrap();
            assert_eq!(cluster.system_version(), Version(6), "system {system}");
            for r in 0..cluster.replica_count() {
                let tx = cluster.session(r).begin();
                for i in 0..6 {
                    let row = tx.read(t, i).unwrap().unwrap();
                    assert_eq!(row.get("v"), Some(&Value::Int(i)), "system {system}");
                }
                tx.commit().unwrap();
            }
            let versions = cluster.replica_versions();
            assert!(versions.iter().all(|(_, v)| *v == Version(6)));
            let stats = cluster.stats();
            assert_eq!(stats.update_commits, 6);
        }
    }

    #[test]
    fn replica_crash_and_recovery_preserves_committed_state() {
        for system in SystemKind::ALL {
            let cluster = small(system);
            let t = cluster.create_table("kv", &["v"]);
            for i in 0..10 {
                let tx = cluster.session(0).begin();
                tx.insert(t, i, vec![("v".into(), Value::Int(i))]).unwrap();
                tx.commit().unwrap();
            }
            cluster.sync_all().unwrap();
            // Tashkent-MW relies on dumps for recovery.
            cluster.replica(1).take_dump();
            // More commits after the dump.
            for i in 10..15 {
                let tx = cluster.session(0).begin();
                tx.insert(t, i, vec![("v".into(), Value::Int(i))]).unwrap();
                tx.commit().unwrap();
            }
            cluster.replica(1).crash();
            assert!(cluster.replica(1).is_crashed());
            cluster.replica(1).recover().unwrap();
            // The recovered replica holds every committed row.
            let tx = cluster.session(1).begin();
            for i in 0..15 {
                let row = tx.read(t, i).unwrap().unwrap();
                assert_eq!(row.get("v"), Some(&Value::Int(i)), "system {system}");
            }
            tx.commit().unwrap();
            assert_eq!(cluster.replica(1).version(), Version(15));
        }
    }

    #[test]
    fn commit_path_traces_are_monotonic_and_metrics_are_consistent() {
        use tashkent_common::metrics::{CounterId, Stage};
        for system in SystemKind::ALL {
            let mut config = ClusterConfig::small(system);
            config.certifier_shards = 2;
            let cluster = Cluster::new(config).unwrap();
            let t = cluster.create_table("kv", &["v"]);
            for i in 0..8 {
                let tx = cluster.session((i % 2) as usize).begin();
                tx.insert(t, i, vec![("v".into(), Value::Int(i))]).unwrap();
                tx.commit().unwrap();
            }
            cluster.sync_all().unwrap();

            // Every recorded commit-path trace has monotonically
            // non-decreasing stage timestamps: begin ≤ execute ≤ certify ≤
            // durable ≤ announce ≤ install.
            let traces = cluster.recent_traces();
            assert_eq!(traces.len(), 8, "system {system}");
            for trace in &traces {
                assert!(
                    trace.is_monotonic(),
                    "system {system}: non-monotonic trace {trace:?}"
                );
            }

            let snapshot = cluster.metrics_snapshot();
            // Certified commits are exactly the shard-commit decisions.
            assert_eq!(
                snapshot.counter(CounterId::CertifyCommits),
                snapshot.shard_commit_sum(),
                "system {system}"
            );
            assert_eq!(snapshot.counter(CounterId::TxCommitted), 8);
            assert_eq!(snapshot.counter(CounterId::CertifyCommits), 8);
            assert!(snapshot.counter(CounterId::TxBegun) >= 8);
            // Every commit pipeline feeds the proxy-side stage histograms.
            for stage in [Stage::Begin, Stage::Execute, Stage::Certify] {
                assert!(
                    snapshot.stage(stage).count() >= 8,
                    "system {system}: stage {} undersampled",
                    stage.label()
                );
            }
            // The certifier times every durable append.
            assert_eq!(snapshot.stage(Stage::Durable).count(), 8, "system {system}");
        }
    }

    #[test]
    fn metrics_survive_replica_recovery() {
        use tashkent_common::metrics::CounterId;
        let cluster = small(SystemKind::TashkentApi);
        let t = cluster.create_table("kv", &["v"]);
        let tx = cluster.session(0).begin();
        tx.insert(t, 1, vec![("v".into(), Value::Int(1))]).unwrap();
        tx.commit().unwrap();
        cluster.sync_all().unwrap();
        let before = cluster.metrics_snapshot();
        cluster.replica(1).crash();
        cluster.replica(1).recover().unwrap();
        // The rebuilt engine and proxy still report into the same registry.
        let tx = cluster.session(1).begin();
        tx.insert(t, 2, vec![("v".into(), Value::Int(2))]).unwrap();
        tx.commit().unwrap();
        let after = cluster.metrics_snapshot();
        let delta = after.counters_since(&before);
        assert!(delta[CounterId::TxCommitted.index()] >= 1);
        // No counter regressed across the recovery.
        for id in CounterId::ALL {
            assert!(after.counter(id) >= before.counter(id), "{}", id.label());
        }
    }

    #[test]
    fn checkpoint_trim_and_recover_across_all_systems() {
        use tashkent_common::metrics::{CounterId, GaugeId};
        for system in SystemKind::ALL {
            let cluster = small(system);
            let t = cluster.create_table("kv", &["v"]);
            let commit = |k: i64| {
                let tx = cluster.session(0).begin();
                tx.insert(t, k, vec![("v".into(), Value::Int(k))]).unwrap();
                tx.commit().unwrap();
            };
            for i in 0..12 {
                commit(i);
            }
            cluster.sync_all().unwrap();
            assert_eq!(cluster.certifier_log_len(), 12, "system {system}");
            assert_eq!(cluster.watermark(), Version::ZERO, "nothing sealed yet");

            cluster.checkpoint();
            assert_eq!(cluster.watermark(), Version(12), "system {system}");
            let (entries, _wal_records) = cluster.trim().unwrap();
            assert_eq!(entries, 12, "system {system}");
            assert_eq!(cluster.certifier_log_len(), 0, "system {system}");
            assert_eq!(cluster.truncation_floor(), Version(12), "system {system}");
            let snapshot = cluster.metrics_snapshot();
            assert!(snapshot.counter(CounterId::CheckpointsSealed) >= 3);
            assert_eq!(snapshot.counter(CounterId::TrimmedLogEntries), 12);
            assert_eq!(snapshot.gauge(GaugeId::TruncationWatermark).0, 12);

            // A replica crashed after the trim recovers from its checkpoint —
            // the trimmed log prefix is never needed.
            cluster.replica(1).crash();
            cluster.recover_replica(1).unwrap();
            assert_eq!(cluster.replica(1).version(), Version(12), "system {system}");
            for i in 12..15 {
                commit(i);
            }
            cluster.sync_all().unwrap();
            let tx = cluster.session(1).begin();
            for i in 0..15 {
                let row = tx.read(t, i).unwrap().unwrap();
                assert_eq!(row.get("v"), Some(&Value::Int(i)), "system {system}");
            }
            tx.commit().unwrap();
            assert_eq!(cluster.replica(1).version(), Version(15), "system {system}");
        }
    }

    #[test]
    fn watermark_is_held_back_by_a_crashed_replicas_checkpoint() {
        let cluster = small(SystemKind::TashkentApi);
        let t = cluster.create_table("kv", &["v"]);
        let commit = |k: i64| {
            let tx = cluster.session(0).begin();
            tx.insert(t, k, vec![("v".into(), Value::Int(k))]).unwrap();
            tx.commit().unwrap();
        };
        for i in 0..5 {
            commit(i);
        }
        cluster.sync_all().unwrap();
        cluster.checkpoint();
        cluster.replica(1).crash();
        for i in 5..9 {
            commit(i);
        }
        // Re-sealing only advances the live replica's checkpoint; the crashed
        // replica's image at version 5 pins the watermark.
        cluster.checkpoint();
        assert_eq!(cluster.watermark(), Version(5));
        cluster.trim().unwrap();
        assert_eq!(cluster.truncation_floor(), Version(5));
        // The crashed replica recovers from that checkpoint and catches up
        // across the retained suffix.
        cluster.recover_replica(1).unwrap();
        assert_eq!(cluster.replica(1).version(), Version(9));
        // With everyone live again the watermark is free to advance.
        cluster.checkpoint();
        cluster.trim().unwrap();
        assert_eq!(cluster.truncation_floor(), Version(9));
        commit(9);
        assert_eq!(cluster.system_version(), Version(10));
    }

    #[test]
    fn background_trimmer_advances_the_watermark() {
        use std::time::{Duration, Instant};
        let mut config = ClusterConfig::small(SystemKind::TashkentApi);
        config.certifier_shards = 2;
        let cluster = Cluster::new(config).unwrap();
        let t = cluster.create_table("kv", &["v"]);
        let trimmer = cluster.start_trimmer(Duration::from_millis(5));
        for i in 0..10 {
            let tx = cluster.session((i % 2) as usize).begin();
            tx.insert(t, i, vec![("v".into(), Value::Int(i))]).unwrap();
            tx.commit().unwrap();
        }
        cluster.sync_all().unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while cluster.truncation_floor() < Version(10) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(trimmer.cycles() > 0);
        drop(trimmer);
        assert_eq!(cluster.truncation_floor(), Version(10));
        assert_eq!(cluster.certifier_log_len(), 0);
        // The cluster keeps committing on the trimmed logs.
        let tx = cluster.session(0).begin();
        tx.insert(t, 100, vec![("v".into(), Value::Int(100))]).unwrap();
        tx.commit().unwrap();
        assert_eq!(cluster.system_version(), Version(11));
    }

    #[test]
    fn certifier_failover_keeps_the_cluster_available() {
        let cluster = small(SystemKind::TashkentMw);
        let t = cluster.create_table("kv", &["v"]);
        let commit = |k: i64| {
            let tx = cluster.session(0).begin();
            tx.insert(t, k, vec![("v".into(), Value::Int(k))]).unwrap();
            tx.commit()
        };
        commit(1).unwrap();
        cluster.crash_certifier_node(CertifierNodeId(0));
        commit(2).unwrap();
        cluster.crash_certifier_node(CertifierNodeId(1));
        assert!(matches!(commit(3), Err(Error::Unavailable(_))));
        cluster.recover_certifier_node(CertifierNodeId(1)).unwrap();
        commit(4).unwrap();
        assert_eq!(cluster.system_version(), Version(3));
    }
}
