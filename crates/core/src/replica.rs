//! One database replica together with its transparent proxy.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use tashkent_common::{
    ClusterConfig, Component, Event, EventKind, MetricsRegistry, ReplicaId, Result, SyncMode,
    SystemKind, Version,
};
use tashkent_proxy::{
    recover_base_or_api_replica, recover_mw_replica, CertifierHandle, Proxy, ProxyConfig,
};
use tashkent_storage::checkpoint::CheckpointStore;
use tashkent_storage::disk::DiskConfig;
use tashkent_storage::{Database, DatabaseDump, EngineConfig};

/// A database replica, its proxy, and the recovery material the middleware
/// keeps for it (dump files for Tashkent-MW).
pub struct ReplicaNode {
    id: ReplicaId,
    system: SystemKind,
    engine_config: EngineConfig,
    schema: Mutex<Vec<(String, Vec<String>)>>,
    db: Mutex<Database>,
    proxy: Mutex<Proxy>,
    certifier: CertifierHandle,
    /// Stored dump images, most recent last (Tashkent-MW recovery).
    dumps: Mutex<Vec<Vec<u8>>>,
    /// Sealed, versioned checkpoint images of the replica's state behind an
    /// atomic manifest flip.  The newest intact image is the recovery
    /// baseline WAL redo replays on top of — and the version it covers
    /// bounds how far the cluster's WAL truncation watermark may advance
    /// for this replica (see [`ReplicaNode::seal_checkpoint`]).
    checkpoints: CheckpointStore,
    proxy_config: ProxyConfig,
}

impl std::fmt::Debug for ReplicaNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaNode")
            .field("id", &self.id)
            .field("system", &self.system)
            .finish()
    }
}

impl ReplicaNode {
    /// Creates a fresh replica for the given cluster configuration, reporting
    /// into the cluster's metrics registry.  The registry is kept in the
    /// engine and proxy configurations, so it survives [`ReplicaNode::recover`]
    /// (which rebuilds both from those configurations).
    #[must_use]
    pub fn new(
        id: ReplicaId,
        config: &ClusterConfig,
        certifier: CertifierHandle,
        metrics: Arc<MetricsRegistry>,
    ) -> Self {
        let sync_mode = config.replica_sync_mode();
        let engine_config = EngineConfig {
            sync_mode,
            disk: DiskConfig {
                fsync_latency: config.service_times.fsync,
                fsync_jitter: config.service_times.fsync_jitter,
                contention_latency: Duration::ZERO,
                sleep: false,
            },
            ordered_commit_timeout: Duration::from_secs(1),
            lock_wait_timeout: Duration::from_secs(1),
            metrics: Arc::clone(&metrics),
        };
        let db = Database::new(engine_config.clone());
        let proxy_config = ProxyConfig {
            system: config.system,
            replica: id,
            local_certification: config.local_certification,
            eager_precertification: config.eager_precertification,
            staleness_bound: config.staleness_bound,
            metrics,
        };
        let proxy = Proxy::new(proxy_config.clone(), db.clone(), certifier.clone());
        ReplicaNode {
            id,
            system: config.system,
            engine_config,
            schema: Mutex::new(Vec::new()),
            db: Mutex::new(db),
            proxy: Mutex::new(proxy),
            certifier,
            dumps: Mutex::new(Vec::new()),
            checkpoints: CheckpointStore::new(),
            proxy_config,
        }
    }

    /// The replica's identifier.
    #[must_use]
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// A handle to the replica's proxy (the client entry point).
    #[must_use]
    pub fn proxy(&self) -> Proxy {
        self.proxy.lock().clone()
    }

    /// A handle to the replica's database engine.
    #[must_use]
    pub fn database(&self) -> Database {
        self.db.lock().clone()
    }

    /// Registers a table on this replica (idempotent) and remembers the
    /// schema for recovery.
    pub fn create_table(&self, name: &str, columns: &[&str]) {
        self.database().create_table(name, columns);
        let mut schema = self.schema.lock();
        if !schema.iter().any(|(n, _)| n == name) {
            schema.push((
                name.to_owned(),
                columns.iter().map(|c| (*c).to_owned()).collect(),
            ));
        }
    }

    /// The replica's current version.
    #[must_use]
    pub fn version(&self) -> Version {
        self.database().version()
    }

    /// Takes a dump of the replica and stores it as recovery material
    /// (Tashkent-MW takes these periodically, Section 7.1).  Returns the dump
    /// size in bytes.
    pub fn take_dump(&self) -> usize {
        let bytes = self.database().dump().to_bytes();
        let len = bytes.len();
        let mut dumps = self.dumps.lock();
        dumps.push(bytes);
        // Keep the two most recent dumps, as the paper's middleware does.
        let excess = dumps.len().saturating_sub(2);
        if excess > 0 {
            dumps.drain(0..excess);
        }
        len
    }

    /// Seals the replica's current state as a durable checkpoint: a
    /// versioned, checksummed image behind an atomic manifest flip.
    /// Returns the version the image covers.
    ///
    /// Checkpoints serve two roles.  First, they are the recovery baseline:
    /// workload loaders populate the initial database through
    /// [`Database::bulk_load`], which bypasses the transaction machinery and
    /// the WAL — on a real engine that state would live in data pages that
    /// survive a crash independently of the log, but this simulated engine
    /// has no data pages, so WAL redo alone would silently drop every
    /// bulk-loaded row that was never subsequently updated (found by the
    /// fault-schedule harness: a recovered TPC-B replica came back missing
    /// a quarter of its accounts).  Recovery restores the newest intact
    /// image first and replays the WAL (or the dumps and the certifier log)
    /// on top.  Second, the covered version authorizes log truncation: the
    /// cluster's watermark never exceeds any replica's newest checkpoint,
    /// so a recovering replica's baseline always meets the trimmed logs.
    pub fn seal_checkpoint(&self) -> Version {
        let dump = self.database().dump();
        let version = dump.version();
        self.checkpoints.seal(version, &dump.to_bytes());
        version
    }

    /// Backwards-compatible alias for [`ReplicaNode::seal_checkpoint`] (the
    /// original test hook this subsystem grew out of).
    pub fn seal_baseline(&self) {
        let _ = self.seal_checkpoint();
    }

    /// The version covered by the replica's newest sealed checkpoint
    /// ([`Version::ZERO`] before the first seal).
    #[must_use]
    pub fn checkpoint_version(&self) -> Version {
        self.checkpoints.latest_version()
    }

    /// Drops WAL records at or below `watermark` (they are covered by a
    /// sealed checkpoint on this replica and applied by every live
    /// replica).  Returns the number of records dropped.
    ///
    /// # Errors
    ///
    /// Propagates WAL rewrite failures.
    pub fn truncate_wal_below(&self, watermark: Version) -> Result<usize> {
        // Clamp to this replica's own checkpoint: a record may only be
        // dropped once an image on *this* replica covers it, whatever the
        // cluster-wide watermark says.
        let bound = watermark.min(self.checkpoints.latest_version());
        if bound.is_zero() {
            return Ok(0);
        }
        self.database().truncate_wal_below(bound)
    }

    /// Current size of the replica's write-ahead log in bytes
    /// (bounded-memory assertions).
    #[must_use]
    pub fn wal_size(&self) -> u64 {
        self.database().wal_size()
    }

    /// Crashes the replica's database process.
    pub fn crash(&self) {
        self.proxy_config.metrics.emit(
            Event::new(Component::Replica, EventKind::ReplicaCrash)
                .node(self.id.value() as usize),
        );
        self.database().crash();
    }

    /// `true` if the replica has crashed and not yet been recovered.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.database().is_crashed()
    }

    /// Recovers the replica after a crash, following the procedure of its
    /// system: WAL redo plus catch-up for Base / Tashkent-API, dump restore
    /// plus catch-up for Tashkent-MW.  Returns the number of writesets
    /// re-applied during catch-up.
    ///
    /// # Errors
    ///
    /// Fails if no recovery material is available (e.g. a Tashkent-MW replica
    /// that never took a dump and whose WAL is useless), or if the certifier
    /// is unavailable.
    pub fn recover(&self) -> Result<usize> {
        let schema_owned = self.schema.lock().clone();
        let schema: Vec<(&str, Vec<&str>)> = schema_owned
            .iter()
            .map(|(n, cols)| (n.as_str(), cols.iter().map(String::as_str).collect()))
            .collect();
        let old_db = self.database();
        let (new_db, applied) = if self.system == SystemKind::TashkentMw {
            // The sealed checkpoints are the oldest recovery images: used
            // only when every rolling dump is corrupt or none was ever
            // taken.  Torn or corrupt images were already filtered out by
            // the checkpoint store's manifest scan.
            let mut dumps = self.checkpoints.intact_payloads_oldest_first();
            dumps.extend(self.dumps.lock().iter().cloned());
            if dumps.is_empty() {
                // Without any recovery image the replica restarts empty and
                // replays the whole certifier log.
                let db = Database::new(self.engine_config.clone());
                for (name, columns) in &schema {
                    db.create_table(name, columns);
                }
                let applied = tashkent_proxy::catch_up(&db, &self.certifier)?;
                (db, applied)
            } else {
                recover_mw_replica(self.engine_config.clone(), &dumps, &self.certifier)?
            }
        } else {
            // The newest intact checkpoint is the baseline WAL redo replays
            // on top of.  Its version is at or above the truncation
            // watermark (the watermark is clamped to every replica's newest
            // checkpoint), so redo never needs a truncated record.
            let baseline = self
                .checkpoints
                .latest()
                .map(|sealed| DatabaseDump::from_bytes(&sealed.payload))
                .transpose()?;
            recover_base_or_api_replica(
                self.engine_config.clone(),
                old_db.log_device(),
                &schema,
                baseline.as_ref(),
                &self.certifier,
            )?
        };
        // Re-register any table missing from the recovery material.
        for (name, columns) in &schema {
            new_db.create_table(name, columns);
        }
        let new_proxy = Proxy::new(
            self.proxy_config.clone(),
            new_db.clone(),
            self.certifier.clone(),
        );
        *self.db.lock() = new_db;
        *self.proxy.lock() = new_proxy;
        self.proxy_config.metrics.emit(
            Event::new(Component::Replica, EventKind::ReplicaRecover)
                .node(self.id.value() as usize),
        );
        Ok(applied)
    }

    /// The WAL sync mode the replica runs with.
    #[must_use]
    pub fn sync_mode(&self) -> SyncMode {
        self.database().sync_mode()
    }
}
