//! One database replica together with its transparent proxy.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use tashkent_common::{
    ClusterConfig, Component, Event, EventKind, MetricsRegistry, ReplicaId, Result, SyncMode,
    SystemKind, Version,
};
use tashkent_proxy::{
    recover_base_or_api_replica, recover_mw_replica, CertifierHandle, Proxy, ProxyConfig,
};
use tashkent_storage::disk::DiskConfig;
use tashkent_storage::{Database, DatabaseDump, EngineConfig};

/// A database replica, its proxy, and the recovery material the middleware
/// keeps for it (dump files for Tashkent-MW).
pub struct ReplicaNode {
    id: ReplicaId,
    system: SystemKind,
    engine_config: EngineConfig,
    schema: Mutex<Vec<(String, Vec<String>)>>,
    db: Mutex<Database>,
    proxy: Mutex<Proxy>,
    certifier: CertifierHandle,
    /// Stored dump images, most recent last (Tashkent-MW recovery).
    dumps: Mutex<Vec<Vec<u8>>>,
    /// Baseline image of bulk-loaded state that never went through the WAL
    /// (stands in for a real engine's data pages; see
    /// [`ReplicaNode::seal_baseline`]).
    baseline: Mutex<Option<Vec<u8>>>,
    proxy_config: ProxyConfig,
}

impl std::fmt::Debug for ReplicaNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaNode")
            .field("id", &self.id)
            .field("system", &self.system)
            .finish()
    }
}

impl ReplicaNode {
    /// Creates a fresh replica for the given cluster configuration, reporting
    /// into the cluster's metrics registry.  The registry is kept in the
    /// engine and proxy configurations, so it survives [`ReplicaNode::recover`]
    /// (which rebuilds both from those configurations).
    #[must_use]
    pub fn new(
        id: ReplicaId,
        config: &ClusterConfig,
        certifier: CertifierHandle,
        metrics: Arc<MetricsRegistry>,
    ) -> Self {
        let sync_mode = config.replica_sync_mode();
        let engine_config = EngineConfig {
            sync_mode,
            disk: DiskConfig {
                fsync_latency: config.service_times.fsync,
                fsync_jitter: config.service_times.fsync_jitter,
                contention_latency: Duration::ZERO,
                sleep: false,
            },
            ordered_commit_timeout: Duration::from_secs(1),
            lock_wait_timeout: Duration::from_secs(1),
            metrics: Arc::clone(&metrics),
        };
        let db = Database::new(engine_config.clone());
        let proxy_config = ProxyConfig {
            system: config.system,
            replica: id,
            local_certification: config.local_certification,
            eager_precertification: config.eager_precertification,
            staleness_bound: config.staleness_bound,
            metrics,
        };
        let proxy = Proxy::new(proxy_config.clone(), db.clone(), certifier.clone());
        ReplicaNode {
            id,
            system: config.system,
            engine_config,
            schema: Mutex::new(Vec::new()),
            db: Mutex::new(db),
            proxy: Mutex::new(proxy),
            certifier,
            dumps: Mutex::new(Vec::new()),
            baseline: Mutex::new(None),
            proxy_config,
        }
    }

    /// The replica's identifier.
    #[must_use]
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// A handle to the replica's proxy (the client entry point).
    #[must_use]
    pub fn proxy(&self) -> Proxy {
        self.proxy.lock().clone()
    }

    /// A handle to the replica's database engine.
    #[must_use]
    pub fn database(&self) -> Database {
        self.db.lock().clone()
    }

    /// Registers a table on this replica (idempotent) and remembers the
    /// schema for recovery.
    pub fn create_table(&self, name: &str, columns: &[&str]) {
        self.database().create_table(name, columns);
        let mut schema = self.schema.lock();
        if !schema.iter().any(|(n, _)| n == name) {
            schema.push((
                name.to_owned(),
                columns.iter().map(|c| (*c).to_owned()).collect(),
            ));
        }
    }

    /// The replica's current version.
    #[must_use]
    pub fn version(&self) -> Version {
        self.database().version()
    }

    /// Takes a dump of the replica and stores it as recovery material
    /// (Tashkent-MW takes these periodically, Section 7.1).  Returns the dump
    /// size in bytes.
    pub fn take_dump(&self) -> usize {
        let bytes = self.database().dump().to_bytes();
        let len = bytes.len();
        let mut dumps = self.dumps.lock();
        dumps.push(bytes);
        // Keep the two most recent dumps, as the paper's middleware does.
        let excess = dumps.len().saturating_sub(2);
        if excess > 0 {
            dumps.drain(0..excess);
        }
        len
    }

    /// Seals the replica's current state as its recovery baseline.
    ///
    /// Workload loaders populate the initial database through
    /// [`Database::bulk_load`], which bypasses the transaction machinery and
    /// the WAL — on a real engine that state would live in data pages that
    /// survive a crash independently of the log, but this simulated engine
    /// has no data pages, so WAL redo alone would silently drop every
    /// bulk-loaded row that was never subsequently updated (found by the
    /// fault-schedule harness: a recovered TPC-B replica came back missing
    /// a quarter of its accounts).  Sealing captures that state: recovery
    /// restores the baseline first and replays the WAL (or the dumps and the
    /// certifier log) on top.
    pub fn seal_baseline(&self) {
        *self.baseline.lock() = Some(self.database().dump().to_bytes());
    }

    /// Crashes the replica's database process.
    pub fn crash(&self) {
        self.proxy_config.metrics.emit(
            Event::new(Component::Replica, EventKind::ReplicaCrash)
                .node(self.id.value() as usize),
        );
        self.database().crash();
    }

    /// `true` if the replica has crashed and not yet been recovered.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.database().is_crashed()
    }

    /// Recovers the replica after a crash, following the procedure of its
    /// system: WAL redo plus catch-up for Base / Tashkent-API, dump restore
    /// plus catch-up for Tashkent-MW.  Returns the number of writesets
    /// re-applied during catch-up.
    ///
    /// # Errors
    ///
    /// Fails if no recovery material is available (e.g. a Tashkent-MW replica
    /// that never took a dump and whose WAL is useless), or if the certifier
    /// is unavailable.
    pub fn recover(&self) -> Result<usize> {
        let schema_owned = self.schema.lock().clone();
        let schema: Vec<(&str, Vec<&str>)> = schema_owned
            .iter()
            .map(|(n, cols)| (n.as_str(), cols.iter().map(String::as_str).collect()))
            .collect();
        let old_db = self.database();
        let baseline_bytes = self.baseline.lock().clone();
        let (new_db, applied) = if self.system == SystemKind::TashkentMw {
            // The sealed baseline is the oldest dump: used only when every
            // rolling dump is corrupt or none was ever taken.
            let mut dumps = baseline_bytes.into_iter().collect::<Vec<_>>();
            dumps.extend(self.dumps.lock().iter().cloned());
            if dumps.is_empty() {
                // Without any recovery image the replica restarts empty and
                // replays the whole certifier log.
                let db = Database::new(self.engine_config.clone());
                for (name, columns) in &schema {
                    db.create_table(name, columns);
                }
                let applied = tashkent_proxy::catch_up(&db, &self.certifier)?;
                (db, applied)
            } else {
                recover_mw_replica(self.engine_config.clone(), &dumps, &self.certifier)?
            }
        } else {
            let baseline = baseline_bytes
                .as_deref()
                .map(DatabaseDump::from_bytes)
                .transpose()?;
            recover_base_or_api_replica(
                self.engine_config.clone(),
                old_db.log_device(),
                &schema,
                baseline.as_ref(),
                &self.certifier,
            )?
        };
        // Re-register any table missing from the recovery material.
        for (name, columns) in &schema {
            new_db.create_table(name, columns);
        }
        let new_proxy = Proxy::new(
            self.proxy_config.clone(),
            new_db.clone(),
            self.certifier.clone(),
        );
        *self.db.lock() = new_db;
        *self.proxy.lock() = new_proxy;
        self.proxy_config.metrics.emit(
            Event::new(Component::Replica, EventKind::ReplicaRecover)
                .node(self.id.value() as usize),
        );
        Ok(applied)
    }

    /// The WAL sync mode the replica runs with.
    #[must_use]
    pub fn sync_mode(&self) -> SyncMode {
        self.database().sync_mode()
    }
}
