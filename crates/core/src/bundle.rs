//! Diagnostic bundles: everything the observability spine knows, captured
//! at the moment an anomaly (or an invariant violation) happens and written
//! to one self-contained file.
//!
//! A [`DiagnosticBundle`] packs the metrics snapshot (reusing the
//! [`MetricsSnapshot`] binary codec from PR 6), the recent commit-path
//! traces, the full event-journal contents, a per-replica progress vector,
//! and the detector verdict that triggered the capture.  The anomaly
//! watchdog writes one when a detector fires; the fault harness writes one
//! when the oracle reports violations, and attaches the path to the replay
//! instructions so a failing `FAULT_SEED` always points at captured
//! evidence.
//!
//! Bundles land under `TASHKENT_BUNDLE_DIR` (default `target/diagnostics`)
//! as `bundle-<kind>-<pid>-<seq>.tdb` and round-trip through
//! [`DiagnosticBundle::to_bytes`] / [`DiagnosticBundle::from_bytes`].

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tashkent_common::metrics::STAGE_COUNT;
use tashkent_common::{CommitPathTrace, Error, Event, MetricsSnapshot, Result};

/// Bundle file magic: `"TDB1"`.
pub const BUNDLE_MAGIC: u32 = 0x5444_4231;

/// File extension of on-disk bundles.
pub const BUNDLE_EXTENSION: &str = "tdb";

/// Environment variable overriding the bundle output directory.
pub const BUNDLE_DIR_ENV: &str = "TASHKENT_BUNDLE_DIR";

/// Default bundle output directory (relative to the working directory).
pub const DEFAULT_BUNDLE_DIR: &str = "target/diagnostics";

static BUNDLE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A self-contained capture of the cluster's observability state.
#[derive(Debug, Clone)]
pub struct DiagnosticBundle {
    /// Short capture-kind label, used in the file name: the watchdog writes
    /// `convoy` / `stall`, the fault harness writes `oracle`.
    pub kind: String,
    /// The verdict or violation text that triggered the capture.
    pub detail: String,
    /// Full metrics snapshot at capture time.
    pub snapshot: MetricsSnapshot,
    /// Recent commit-path traces (newest last).
    pub traces: Vec<CommitPathTrace>,
    /// The merged event-journal timeline at capture time.
    pub events: Vec<Event>,
    /// Per-replica progress: `(replica id, installed version)`.
    pub progress: Vec<(u32, u64)>,
}

impl DiagnosticBundle {
    /// The directory bundles are written to: `TASHKENT_BUNDLE_DIR` if set,
    /// otherwise [`DEFAULT_BUNDLE_DIR`].
    #[must_use]
    pub fn default_dir() -> PathBuf {
        std::env::var_os(BUNDLE_DIR_ENV)
            .map_or_else(|| PathBuf::from(DEFAULT_BUNDLE_DIR), PathBuf::from)
    }

    /// Serialises the bundle with the same hand-rolled big-endian framing
    /// the metrics snapshot codec uses (the vendored serde is a no-op stub).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let snapshot = self.snapshot.to_bytes();
        let mut out = Vec::with_capacity(512 + snapshot.len());
        put_u32(&mut out, BUNDLE_MAGIC);
        put_bytes(&mut out, self.kind.as_bytes());
        put_bytes(&mut out, self.detail.as_bytes());
        put_bytes(&mut out, &snapshot);
        put_u32(&mut out, self.traces.len() as u32);
        for trace in &self.traces {
            put_u64(&mut out, trace.tx);
            put_u64(&mut out, trace.started_micros);
            out.push(STAGE_COUNT as u8);
            for mark in &trace.marks {
                put_u64(&mut out, *mark);
            }
        }
        put_u32(&mut out, self.events.len() as u32);
        for event in &self.events {
            for word in event.encode() {
                put_u64(&mut out, word);
            }
        }
        put_u32(&mut out, self.progress.len() as u32);
        for (replica, version) in &self.progress {
            put_u32(&mut out, *replica);
            put_u64(&mut out, *version);
        }
        out
    }

    /// Decodes a bundle previously produced by [`DiagnosticBundle::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`Error::Corruption`] on a bad magic number, truncated input, or an
    /// event record that does not decode.
    pub fn from_bytes(bytes: &[u8]) -> Result<DiagnosticBundle> {
        let mut cursor = Cursor { bytes, at: 0 };
        let magic = cursor.u32()?;
        if magic != BUNDLE_MAGIC {
            return Err(Error::Corruption(format!(
                "diagnostic bundle magic mismatch: {magic:#010x}"
            )));
        }
        let kind = cursor.string()?;
        let detail = cursor.string()?;
        let snapshot_bytes = cursor.bytes_block()?;
        let snapshot = MetricsSnapshot::from_bytes(&snapshot_bytes)?;
        let trace_count = cursor.u32()? as usize;
        let mut traces = Vec::with_capacity(trace_count.min(4096));
        for _ in 0..trace_count {
            let tx = cursor.u64()?;
            let started_micros = cursor.u64()?;
            let marks_len = cursor.u8()? as usize;
            if marks_len != STAGE_COUNT {
                return Err(Error::Corruption(format!(
                    "trace mark count {marks_len} != stage count {STAGE_COUNT}"
                )));
            }
            let mut marks = [0u64; STAGE_COUNT];
            for mark in &mut marks {
                *mark = cursor.u64()?;
            }
            traces.push(CommitPathTrace {
                tx,
                started_micros,
                marks,
            });
        }
        let event_count = cursor.u32()? as usize;
        let mut events = Vec::with_capacity(event_count.min(4096));
        for _ in 0..event_count {
            let words = [cursor.u64()?, cursor.u64()?, cursor.u64()?, cursor.u64()?];
            let event = Event::decode(words).ok_or_else(|| {
                Error::Corruption("diagnostic bundle holds an undecodable event".into())
            })?;
            events.push(event);
        }
        let progress_count = cursor.u32()? as usize;
        let mut progress = Vec::with_capacity(progress_count.min(4096));
        for _ in 0..progress_count {
            let replica = cursor.u32()?;
            let version = cursor.u64()?;
            progress.push((replica, version));
        }
        Ok(DiagnosticBundle {
            kind,
            detail,
            snapshot,
            traces,
            events,
            progress,
        })
    }

    /// Writes the bundle into `dir` (created if missing) as
    /// `bundle-<kind>-<pid>-<seq>.tdb` and returns the path.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if the directory cannot be created or the file cannot
    /// be written.
    pub fn write_to(&self, dir: &Path) -> Result<PathBuf> {
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::Io(format!("creating bundle directory {}: {e}", dir.display())))?;
        let seq = BUNDLE_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!(
            "bundle-{}-{}-{seq}.{BUNDLE_EXTENSION}",
            self.kind,
            std::process::id()
        ));
        std::fs::write(&path, self.to_bytes())
            .map_err(|e| Error::Io(format!("writing bundle {}: {e}", path.display())))?;
        Ok(path)
    }

    /// Writes the bundle into [`DiagnosticBundle::default_dir`].
    ///
    /// # Errors
    ///
    /// As for [`DiagnosticBundle::write_to`].
    pub fn write_default(&self) -> Result<PathBuf> {
        self.write_to(&DiagnosticBundle::default_dir())
    }

    /// Reads a bundle back from disk.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if the file cannot be read, [`Error::Corruption`] if it
    /// does not decode.
    pub fn read_from(path: &Path) -> Result<DiagnosticBundle> {
        let bytes = std::fs::read(path)
            .map_err(|e| Error::Io(format!("reading bundle {}: {e}", path.display())))?;
        DiagnosticBundle::from_bytes(&bytes)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8]> {
        let end = self.at.checked_add(n).filter(|end| *end <= self.bytes.len());
        let Some(end) = end else {
            return Err(Error::Corruption("diagnostic bundle truncated".into()));
        };
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let slice = self.take(4)?;
        Ok(u32::from_be_bytes([slice[0], slice[1], slice[2], slice[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let slice = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(slice);
        Ok(u64::from_be_bytes(buf))
    }

    fn bytes_block(&mut self) -> Result<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String> {
        let bytes = self.bytes_block()?;
        String::from_utf8(bytes)
            .map_err(|_| Error::Corruption("diagnostic bundle holds invalid UTF-8".into()))
    }
}

#[cfg(test)]
mod tests {
    use tashkent_common::metrics::{CounterId, TraceTimer};
    use tashkent_common::{Component, EventKind, MetricsRegistry, Stage};

    use super::*;

    fn sample_bundle() -> DiagnosticBundle {
        let registry = MetricsRegistry::enabled();
        registry.incr(CounterId::TxCommitted);
        registry.add(CounterId::WalFsyncs, 3);
        registry.emit(
            Event::new(Component::Certifier, EventKind::CertifyCommit)
                .tx(7)
                .version(42)
                .shard(1),
        );
        registry.emit(Event::new(Component::Wal, EventKind::WalFsync).node(0));
        let mut timer = TraceTimer::new_at(7, registry.uptime_micros());
        for stage in Stage::ALL {
            let _ = timer.mark(stage);
        }
        registry.record_trace(timer.finish());
        DiagnosticBundle {
            kind: "stall".into(),
            detail: "commits stopped for 3 consecutive samples".into(),
            snapshot: registry.snapshot(),
            traces: registry.recent_traces(),
            events: registry.events(),
            progress: vec![(0, 42), (1, 40)],
        }
    }

    #[test]
    fn bundle_round_trips_through_its_codec() {
        let bundle = sample_bundle();
        let decoded = DiagnosticBundle::from_bytes(&bundle.to_bytes()).expect("decodes");
        assert_eq!(decoded.kind, bundle.kind);
        assert_eq!(decoded.detail, bundle.detail);
        assert_eq!(decoded.events, bundle.events);
        assert_eq!(decoded.progress, bundle.progress);
        assert_eq!(decoded.traces.len(), bundle.traces.len());
        assert_eq!(decoded.traces[0].tx, bundle.traces[0].tx);
        assert_eq!(decoded.traces[0].started_micros, bundle.traces[0].started_micros);
        assert_eq!(decoded.traces[0].marks, bundle.traces[0].marks);
        // The nested snapshot reuses the PR 6 codec, whose round-trip is
        // bit-exact — compare the re-encoded bytes.
        assert_eq!(
            decoded.snapshot.to_bytes(),
            bundle.snapshot.to_bytes(),
            "nested metrics snapshot must survive bit-exact"
        );
        assert_eq!(decoded.snapshot.counter(CounterId::WalFsyncs), 3);
        // And the full bundle re-encodes identically.
        assert_eq!(decoded.to_bytes(), bundle.to_bytes());
    }

    #[test]
    fn bundle_decoder_rejects_garbage_and_truncation() {
        assert!(DiagnosticBundle::from_bytes(b"not a bundle").is_err());
        let bytes = sample_bundle().to_bytes();
        for cut in [0, 3, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                DiagnosticBundle::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn bundle_writes_to_disk_and_reads_back() {
        let dir = std::env::temp_dir().join(format!("tashkent-bundle-test-{}", std::process::id()));
        let bundle = sample_bundle();
        let path = bundle.write_to(&dir).expect("bundle written");
        assert!(path.file_name().is_some_and(|n| {
            let n = n.to_string_lossy();
            n.starts_with("bundle-stall-") && n.ends_with(".tdb")
        }));
        let read = DiagnosticBundle::read_from(&path).expect("bundle read back");
        assert_eq!(read.to_bytes(), bundle.to_bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
