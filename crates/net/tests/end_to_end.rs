//! End-to-end session tests: a real certifier behind a [`NetServer`],
//! certified against through a [`RemoteCertifier`] — over both transports.

use std::sync::Arc;
use std::time::Duration;

use tashkent_certifier::{Certifier, CertifierConfig, CertificationRequest};
use tashkent_common::{
    metrics::MetricsRegistry, Component, CounterId, EventKind, GaugeId, ReplicaId, TableId,
    TransportKind, Value, Version, WriteItem, WriteSet,
};
use tashkent_net::{ClusterNet, LoopbackNet, NetServer, RemoteCertifier, SessionConfig, TcpTransport};
use tashkent_proxy::{CertifierHandle, CertifierService};

fn ws(key: i64) -> WriteSet {
    WriteSet::from_items(vec![WriteItem::update(
        TableId(0),
        key,
        vec![("v".into(), Value::Int(key))],
    )])
}

fn commit(service: &dyn CertifierService, key: i64) -> Version {
    let at = service.system_version();
    let response = service
        .certify(&CertificationRequest {
            replica: ReplicaId(0),
            start_version: at,
            writeset: ws(key),
            replica_version: at,
        })
        .expect("wire certify");
    assert!(response.decision.is_commit());
    response.commit_version.expect("commit carries a version")
}

fn single_handle() -> CertifierHandle {
    CertifierHandle::Single(Arc::new(Certifier::new(CertifierConfig::default())))
}

#[test]
fn loopback_conversation() {
    let net = LoopbackNet::shared();
    let metrics = Arc::new(MetricsRegistry::enabled());
    let handle = single_handle();
    let server = NetServer::start(
        "certifier",
        handle,
        &net.transport("certifier"),
        "certifier",
        Arc::clone(&metrics),
    )
    .unwrap();
    let client = RemoteCertifier::start(
        SessionConfig::new("replica-0", server.endpoint()),
        Arc::new(net.transport("replica-0")),
        Arc::clone(&metrics),
    );
    client.wait_connected(Duration::from_secs(2)).unwrap();
    assert_eq!(commit(client.as_ref(), 1), Version(1));
    client.ping().unwrap();
    client.close();
}

#[test]
fn tcp_conversation() {
    let metrics = Arc::new(MetricsRegistry::enabled());
    let handle = single_handle();
    let server = NetServer::start(
        "certifier",
        handle,
        &TcpTransport::new(),
        "127.0.0.1:0",
        Arc::clone(&metrics),
    )
    .unwrap();
    assert!(server.endpoint().starts_with("127.0.0.1:"));
    let client = RemoteCertifier::start(
        SessionConfig::new("replica-0", server.endpoint()),
        Arc::new(TcpTransport::new()),
        Arc::clone(&metrics),
    );
    client.wait_connected(Duration::from_secs(2)).unwrap();
    assert_eq!(commit(client.as_ref(), 1), Version(1));
    assert_eq!(client.as_ref().writesets_after(Version(0)).len(), 1);
    client.ping().unwrap();
    client.close();
}

#[test]
fn full_conversation_with_metrics_over_loopback() {
    let net = LoopbackNet::shared();
    conversation_impl(net);
}

fn conversation_impl(net: Arc<LoopbackNet>) {
    let metrics = Arc::new(MetricsRegistry::enabled());
    let handle = single_handle();
    let server = NetServer::start(
        "certifier",
        handle,
        &net.transport("certifier"),
        "certifier",
        Arc::clone(&metrics),
    )
    .unwrap();
    let client = RemoteCertifier::start(
        SessionConfig::new("replica-0", server.endpoint()),
        Arc::new(net.transport("replica-0")),
        Arc::clone(&metrics),
    );
    client.wait_connected(Duration::from_secs(2)).unwrap();

    assert_eq!(commit(client.as_ref(), 1), Version(1));
    assert_eq!(commit(client.as_ref(), 2), Version(2));
    assert_eq!(client.as_ref().system_version(), Version(2));
    assert!(client.as_ref().is_available());
    assert_eq!(client.as_ref().writesets_after(Version(0)).len(), 2);
    assert!(client.state_transfer().unwrap().is_none());

    let snapshot = metrics.snapshot();
    assert!(snapshot.counter(CounterId::NetMessages) >= 10);
    assert!(snapshot.counter(CounterId::NetBytesSent) > 0);
    assert!(snapshot.counter(CounterId::NetBytesReceived) > 0);
    let (open_now, _) = snapshot.gauge(GaugeId::OpenSessions);
    assert_eq!(open_now, 2, "one session, counted by both ends");
    assert!(metrics
        .component_events(Component::Certifier)
        .iter()
        .any(|e| e.kind == EventKind::SessionOpen));

    client.close();
    server.stop();
    let (open_after, _) = metrics.snapshot().gauge(GaugeId::OpenSessions);
    assert_eq!(open_after, 0, "both ends closed their session");
}

#[test]
fn partition_fails_fast_and_reconnects_after_heal() {
    let net = LoopbackNet::shared();
    let metrics = Arc::new(MetricsRegistry::enabled());
    let handle = single_handle();
    let _server = NetServer::start(
        "certifier",
        handle,
        &net.transport("certifier"),
        "certifier",
        Arc::clone(&metrics),
    )
    .unwrap();
    let mut config = SessionConfig::new("replica-0", "certifier");
    config.request_timeout = Duration::from_millis(200);
    let client = RemoteCertifier::start(
        config,
        Arc::new(net.transport("replica-0")),
        Arc::clone(&metrics),
    );
    client.wait_connected(Duration::from_secs(2)).unwrap();
    assert_eq!(commit(client.as_ref(), 1), Version(1));

    net.sever("replica-0", "certifier");
    let at = client.as_ref().system_version(); // falls back to cache
    assert_eq!(at, Version(1));
    let result = client.as_ref().certify(&CertificationRequest {
        replica: ReplicaId(0),
        start_version: at,
        writeset: ws(2),
        replica_version: at,
    });
    assert!(result.is_err_and(|e| e.is_unavailable()));
    assert!(!client.as_ref().is_available());
    assert!(
        client.as_ref().writesets_after(Version(0)).is_empty(),
        "a dead wire reports no stream progress"
    );

    net.heal("replica-0", "certifier");
    client.wait_connected(Duration::from_secs(2)).unwrap();
    assert_eq!(commit(client.as_ref(), 2), Version(2));
    assert!(
        metrics.snapshot().counter(CounterId::NetReconnects) >= 1,
        "healing the link must count a reconnect"
    );
    client.close();
}

#[test]
fn half_open_link_is_detected_and_session_recovers_after_heal() {
    let net = LoopbackNet::shared();
    let metrics = Arc::new(MetricsRegistry::enabled());
    let handle = single_handle();
    let _server = NetServer::start(
        "certifier",
        handle,
        &net.transport("certifier"),
        "certifier",
        Arc::clone(&metrics),
    )
    .unwrap();
    let mut config = SessionConfig::new("replica-0", "certifier");
    config.request_timeout = Duration::from_millis(300);
    config.half_open_grace = Duration::from_millis(100);
    let client = RemoteCertifier::start(
        config,
        Arc::new(net.transport("replica-0")),
        Arc::clone(&metrics),
    );
    client.wait_connected(Duration::from_secs(2)).unwrap();
    assert_eq!(commit(client.as_ref(), 1), Version(1));

    // Cut only the certifier→replica direction: requests still *arrive*
    // (and are served), but every response vanishes.  No send on either
    // side errors — the nastiest link failure.
    assert!(net.sever_one_way("certifier", "replica-0"));
    let at = Version(1);
    let result = client.as_ref().certify(&CertificationRequest {
        replica: ReplicaId(0),
        start_version: at,
        writeset: ws(2),
        replica_version: at,
    });
    assert!(result.is_err_and(|e| e.is_unavailable()));
    // The no-response-traffic detector must tear the session down rather
    // than leaving it "connected" to a dead return path; the redial is
    // then refused while the direction stays cut.
    client
        .wait_disconnected(Duration::from_secs(2))
        .expect("half-open session must be detected and torn down");

    net.heal("replica-0", "certifier");
    client.wait_connected(Duration::from_secs(2)).unwrap();
    // The writeset certified into the void DID commit server-side (key 2
    // took version 2) — the retry path must cope with that, which is why
    // the driver retries with a fresh key/start rather than re-sending.
    assert_eq!(commit(client.as_ref(), 3), Version(3));
    assert!(
        metrics.snapshot().counter(CounterId::NetReconnects) >= 1,
        "recovering from a half-open link must count a reconnect"
    );
    client.close();
}

#[test]
fn cluster_net_wires_replicas_and_links() {
    let metrics = Arc::new(MetricsRegistry::enabled());
    let net = ClusterNet::start(
        TransportKind::Loopback,
        single_handle(),
        2,
        Arc::clone(&metrics),
    )
    .unwrap();
    let handle0 = net.replica_handle(0);
    let handle1 = net.replica_handle(1);
    // Data plane crosses the wire; control plane reaches the certifier.
    let at = handle0.system_version();
    let response = handle0
        .certify(&CertificationRequest {
            replica: ReplicaId(0),
            start_version: at,
            writeset: ws(10),
            replica_version: at,
        })
        .unwrap();
    assert!(response.decision.is_commit());
    assert_eq!(handle1.system_version(), Version(1));
    assert_eq!(handle0.stats().commits, 1);

    // Partition replica 1 only: replica 0 keeps certifying.
    assert!(net.sever_certifier_link(1));
    assert!(net.is_link_severed(1));
    assert!(!handle1.is_available());
    assert!(handle0.is_available());
    assert!(net.heal_all_links());
    assert!(!net.is_link_severed(1));
    net.client(1).wait_connected(Duration::from_secs(2)).unwrap();
    assert!(handle1.is_available());
    assert!(metrics
        .events()
        .iter()
        .any(|e| e.kind == EventKind::LinkFault));
    net.shutdown();
}
