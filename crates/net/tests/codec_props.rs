//! Property tests for the TKNP wire codec.
//!
//! Arbitrary envelopes must survive encode → frame → reassemble → decode
//! byte-for-byte; every strict truncation and every payload corruption must
//! surface as a *typed* error (never a panic, never a silently wrong
//! message); frames from another protocol version must be skipped, not
//! fatal.

use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use tashkent_certifier::{
    CertificationDecision, CertificationRequest, CertificationResponse, RemoteWriteSet,
};
use tashkent_common::{Error, ReplicaId, TableId, Value, Version, WriteItem, WriteSet};
use tashkent_net::{
    decode_message, encode_frame, encode_frame_with_version, encode_message, Envelope,
    FrameReader, Message,
};

fn gen_string(rng: &mut StdRng, max: usize) -> String {
    let len = rng.gen_range(0..=max);
    (0..len)
        .map(|_| char::from(rng.gen_range(b'a'..=b'z')))
        .collect()
}

fn gen_writeset(rng: &mut StdRng) -> WriteSet {
    let items = rng.gen_range(0..4usize);
    WriteSet::from_items(
        (0..items)
            .map(|_| {
                WriteItem::update(
                    TableId(rng.gen_range(0..4u32)),
                    rng.gen_range(0..100i64),
                    vec![(gen_string(rng, 4), Value::Int(rng.gen_range(0..1000)))],
                )
            })
            .collect(),
    )
}

fn gen_remote_writeset(rng: &mut StdRng) -> RemoteWriteSet {
    RemoteWriteSet {
        commit_version: Version(rng.gen_range(0..1_000)),
        writeset: Arc::new(gen_writeset(rng)),
        conflict_free_to: Version(rng.gen_range(0..1_000)),
    }
}

fn gen_message(rng: &mut StdRng) -> Message {
    match rng.gen_range(0..14u32) {
        0 => Message::Hello {
            node: gen_string(rng, 12),
        },
        1 => Message::HelloAck {
            node: gen_string(rng, 12),
        },
        2 => Message::CertifyRequest(CertificationRequest {
            replica: ReplicaId(rng.gen_range(0..8)),
            start_version: Version(rng.gen_range(0..1_000)),
            writeset: gen_writeset(rng),
            replica_version: Version(rng.gen_range(0..1_000)),
        }),
        3 => Message::CertifyDecision(CertificationResponse {
            decision: if rng.gen_bool(0.5) {
                CertificationDecision::Commit
            } else {
                CertificationDecision::Abort {
                    reason: gen_string(rng, 16),
                    forced: rng.gen_bool(0.5),
                }
            },
            commit_version: rng.gen_bool(0.5).then(|| Version(rng.gen_range(0..1_000))),
            remote_writesets: (0..rng.gen_range(0..3usize))
                .map(|_| gen_remote_writeset(rng))
                .collect(),
            system_version: Version(rng.gen_range(0..1_000)),
        }),
        4 => Message::FetchWritesets {
            since: Version(rng.gen_range(0..1_000)),
        },
        5 => Message::WritesetBatch {
            writesets: (0..rng.gen_range(0..4usize))
                .map(|_| gen_remote_writeset(rng))
                .collect(),
        },
        6 => Message::StatusRequest,
        7 => Message::StatusResponse {
            system_version: Version(rng.gen_range(0..1_000)),
            truncation_floor: Version(rng.gen_range(0..1_000)),
            available: rng.gen_bool(0.5),
        },
        8 => Message::StateTransferRequest,
        9 => Message::StateTransferResponse {
            checkpoint: rng.gen_bool(0.5).then(|| {
                let len = rng.gen_range(0..64usize);
                (0..len).map(|_| (rng.gen::<u32>() & 0xFF) as u8).collect()
            }),
        },
        10 => Message::Ping,
        11 => Message::Pong,
        12 => Message::Goodbye,
        _ => Message::ErrorReply {
            unavailable: rng.gen_bool(0.5),
            detail: gen_string(rng, 24),
        },
    }
}

/// A hand-rolled [`Strategy`] for arbitrary envelopes: the message space is
/// too irregular (enums of structs of enums) for tuple composition, so the
/// generator drives the RNG directly.
#[derive(Debug, Clone, Copy)]
struct ArbEnvelope;

impl Strategy for ArbEnvelope {
    type Value = Envelope;

    fn generate(&self, rng: &mut StdRng) -> Envelope {
        Envelope {
            request_id: rng.gen(),
            message: gen_message(rng),
        }
    }
}

fn encode(envelope: &Envelope) -> Vec<u8> {
    let mut buf = BytesMut::new();
    encode_message(&mut buf, envelope);
    buf.freeze().to_vec()
}

proptest! {
    #[test]
    fn arbitrary_envelopes_round_trip(envelope in ArbEnvelope) {
        let raw = encode(&envelope);
        let mut bytes = Bytes::copy_from_slice(&raw);
        let decoded = decode_message(&mut bytes).unwrap();
        prop_assert_eq!(decoded, envelope);
        prop_assert_eq!(bytes.len(), 0, "codec must consume what it wrote");
    }

    #[test]
    fn arbitrary_envelopes_survive_framing_in_single_byte_chunks(
        envelopes in prop::collection::vec(ArbEnvelope, 1..4)
    ) {
        let mut wire = Vec::new();
        for envelope in &envelopes {
            wire.extend_from_slice(&encode_frame(&encode(envelope)));
        }
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        for byte in &wire {
            reader.push(&[*byte]);
            while let Some(payload) = reader.next_frame().unwrap() {
                let mut bytes = Bytes::from(payload);
                decoded.push(decode_message(&mut bytes).unwrap());
            }
        }
        prop_assert_eq!(decoded, envelopes);
        prop_assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn every_strict_truncation_is_a_typed_error(envelope in ArbEnvelope) {
        let raw = encode(&envelope);
        for cut in 0..raw.len() {
            let mut bytes = Bytes::copy_from_slice(&raw[..cut]);
            let result = decode_message(&mut bytes);
            prop_assert!(
                matches!(result, Err(Error::Corruption(_))),
                "prefix of {} / {} bytes must be corruption, got {:?}",
                cut,
                raw.len(),
                result
            );
        }
    }

    #[test]
    fn every_single_byte_payload_corruption_is_caught_by_the_frame(
        envelope in ArbEnvelope,
        flip in 0usize..10_000,
        mask in 1u8..=255
    ) {
        let payload = encode(&envelope);
        let mut wire = encode_frame(&payload);
        // Flip one payload byte (offset 10 is where the payload starts).
        wire[10 + flip % payload.len()] ^= mask;
        let mut reader = FrameReader::new();
        reader.push(&wire);
        prop_assert!(matches!(reader.next_frame(), Err(Error::Corruption(_))));
    }

    #[test]
    fn cross_version_frames_are_skipped_around_good_ones(
        envelope in ArbEnvelope,
        future_version in 2u16..=u16::MAX
    ) {
        let mut reader = FrameReader::new();
        reader.push(&encode_frame_with_version(b"unintelligible", future_version));
        reader.push(&encode_frame(&encode(&envelope)));
        reader.push(&encode_frame_with_version(&[], future_version));
        let payload = reader.next_frame().unwrap().expect("good frame survives");
        let mut bytes = Bytes::from(payload);
        prop_assert_eq!(decode_message(&mut bytes).unwrap(), envelope);
        prop_assert!(reader.next_frame().unwrap().is_none());
        prop_assert_eq!(reader.skipped_versions(), 2);
    }
}
