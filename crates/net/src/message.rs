//! The binary codec for every TKNP message.
//!
//! Each wire payload is one [`Envelope`]: a request id (echoed verbatim in
//! the response so the client's session manager can match replies to pending
//! callers) and a tagged [`Message`].  The codec is hand-rolled on the same
//! [`bytes`] idiom as the storage log codec, and reuses the storage encoders
//! for the structured types (writesets, versions) so the wire format and the
//! on-disk format agree on those layouts.
//!
//! Every decoder returns [`Error::Corruption`] on truncation and
//! [`Error::Protocol`] on an unknown message tag — nothing in this module
//! panics on attacker-shaped bytes.

use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tashkent_certifier::{
    CertificationDecision, CertificationRequest, CertificationResponse, RemoteWriteSet,
};
use tashkent_common::{Error, ReplicaId, Result, Version};
use tashkent_storage::codec::{
    decode_version, decode_writeset, encode_version, encode_writeset,
};

/// Checks that at least `needed` bytes remain in the buffer.
fn need(buf: &impl Buf, needed: usize, what: &str) -> Result<()> {
    if buf.remaining() < needed {
        return Err(Error::Corruption(format!(
            "truncated {what}: need {needed} bytes, {} remaining",
            buf.remaining()
        )));
    }
    Ok(())
}

fn encode_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn decode_string(buf: &mut Bytes, what: &str) -> Result<String> {
    need(buf, 4, what)?;
    let len = buf.get_u32() as usize;
    need(buf, len, what)?;
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec())
        .map_err(|_| Error::Corruption(format!("invalid utf-8 in {what}")))
}

/// One wire payload: a request id plus the message it carries.
///
/// Requests choose a fresh id; responses echo the request's id.  Unsolicited
/// messages (e.g. [`Message::Goodbye`]) use id `0`.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Correlates a response with its pending request.
    pub request_id: u64,
    /// The message itself.
    pub message: Message,
}

/// Every message of the TKNP protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Session handshake: the first message on every new connection.
    Hello {
        /// The dialling node's name (e.g. `replica-1`), for the server's
        /// session table and event journal.
        node: String,
    },
    /// Handshake acknowledgement; the session is established once received.
    HelloAck {
        /// The answering node's name (e.g. `certifier`).
        node: String,
    },
    /// A replica asks the certifier to certify an update transaction.
    CertifyRequest(CertificationRequest),
    /// The certifier's decision, with the piggy-backed remote writesets.
    CertifyDecision(CertificationResponse),
    /// A replica pulls the remote-writeset stream after `since`.
    FetchWritesets {
        /// Stream position: return writesets committed strictly after this.
        since: Version,
    },
    /// The writeset stream answering a fetch.
    WritesetBatch {
        /// Writesets in ascending global commit-version order.
        writesets: Vec<RemoteWriteSet>,
    },
    /// A replica polls the certifier's liveness and log positions.
    StatusRequest,
    /// The certifier's positions, answering a status poll.
    StatusResponse {
        /// The global system version.
        system_version: Version,
        /// The log truncation floor (recovery refuses to start below it).
        truncation_floor: Version,
        /// `true` if certification can currently make progress.
        available: bool,
    },
    /// A recovering replica asks for the newest sealed checkpoint.
    StateTransferRequest,
    /// The checkpoint payload answering a state transfer (absent when the
    /// certifier has never sealed one).
    StateTransferResponse {
        /// The opaque checkpoint bytes
        /// ([`tashkent_certifier::certifier::decode_checkpoint_payload`]
        /// reads them), or `None`.
        checkpoint: Option<Vec<u8>>,
    },
    /// Keep-alive probe.
    Ping,
    /// Keep-alive answer.
    Pong,
    /// Graceful close: the sender will not issue further requests and will
    /// drop the connection once in-flight responses have drained.
    Goodbye,
    /// A request failed on the server; carries enough to rebuild the error
    /// client-side.
    ErrorReply {
        /// `true` when the failure maps to [`Error::Unavailable`] (the
        /// caller may retry after the cluster heals); `false` for
        /// certification aborts and other typed failures.
        unavailable: bool,
        /// Human-readable detail.
        detail: String,
    },
}

impl Message {
    fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => 0,
            Message::HelloAck { .. } => 1,
            Message::CertifyRequest(_) => 2,
            Message::CertifyDecision(_) => 3,
            Message::FetchWritesets { .. } => 4,
            Message::WritesetBatch { .. } => 5,
            Message::StatusRequest => 6,
            Message::StatusResponse { .. } => 7,
            Message::StateTransferRequest => 8,
            Message::StateTransferResponse { .. } => 9,
            Message::Ping => 10,
            Message::Pong => 11,
            Message::Goodbye => 12,
            Message::ErrorReply { .. } => 13,
        }
    }

    /// A short label for logs and traces.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "hello",
            Message::HelloAck { .. } => "hello_ack",
            Message::CertifyRequest(_) => "certify_request",
            Message::CertifyDecision(_) => "certify_decision",
            Message::FetchWritesets { .. } => "fetch_writesets",
            Message::WritesetBatch { .. } => "writeset_batch",
            Message::StatusRequest => "status_request",
            Message::StatusResponse { .. } => "status_response",
            Message::StateTransferRequest => "state_transfer_request",
            Message::StateTransferResponse { .. } => "state_transfer_response",
            Message::Ping => "ping",
            Message::Pong => "pong",
            Message::Goodbye => "goodbye",
            Message::ErrorReply { .. } => "error_reply",
        }
    }
}

fn encode_remote_writeset(buf: &mut BytesMut, remote: &RemoteWriteSet) {
    encode_version(buf, remote.commit_version);
    encode_version(buf, remote.conflict_free_to);
    encode_writeset(buf, &remote.writeset);
}

fn decode_remote_writeset(buf: &mut Bytes) -> Result<RemoteWriteSet> {
    let commit_version = decode_version(buf)?;
    let conflict_free_to = decode_version(buf)?;
    let writeset = decode_writeset(buf)?;
    Ok(RemoteWriteSet {
        commit_version,
        writeset: Arc::new(writeset),
        conflict_free_to,
    })
}

fn encode_decision(buf: &mut BytesMut, decision: &CertificationDecision) {
    match decision {
        CertificationDecision::Commit => buf.put_u8(0),
        CertificationDecision::Abort { reason, forced } => {
            buf.put_u8(1);
            buf.put_u8(u8::from(*forced));
            encode_string(buf, reason);
        }
    }
}

fn decode_decision(buf: &mut Bytes) -> Result<CertificationDecision> {
    need(buf, 1, "decision tag")?;
    match buf.get_u8() {
        0 => Ok(CertificationDecision::Commit),
        1 => {
            need(buf, 1, "abort flags")?;
            let forced = buf.get_u8() != 0;
            let reason = decode_string(buf, "abort reason")?;
            Ok(CertificationDecision::Abort { reason, forced })
        }
        other => Err(Error::Corruption(format!("unknown decision tag {other}"))),
    }
}

/// Encodes one [`Envelope`] into `buf`.
pub fn encode_message(buf: &mut BytesMut, envelope: &Envelope) {
    buf.put_u64(envelope.request_id);
    buf.put_u8(envelope.message.tag());
    match &envelope.message {
        Message::Hello { node } | Message::HelloAck { node } => encode_string(buf, node),
        Message::CertifyRequest(request) => {
            buf.put_u32(request.replica.value());
            encode_version(buf, request.start_version);
            encode_version(buf, request.replica_version);
            encode_writeset(buf, &request.writeset);
        }
        Message::CertifyDecision(response) => {
            encode_decision(buf, &response.decision);
            match response.commit_version {
                Some(v) => {
                    buf.put_u8(1);
                    encode_version(buf, v);
                }
                None => buf.put_u8(0),
            }
            encode_version(buf, response.system_version);
            buf.put_u32(response.remote_writesets.len() as u32);
            for remote in &response.remote_writesets {
                encode_remote_writeset(buf, remote);
            }
        }
        Message::FetchWritesets { since } => encode_version(buf, *since),
        Message::WritesetBatch { writesets } => {
            buf.put_u32(writesets.len() as u32);
            for remote in writesets {
                encode_remote_writeset(buf, remote);
            }
        }
        Message::StatusRequest
        | Message::StateTransferRequest
        | Message::Ping
        | Message::Pong
        | Message::Goodbye => {}
        Message::StatusResponse {
            system_version,
            truncation_floor,
            available,
        } => {
            encode_version(buf, *system_version);
            encode_version(buf, *truncation_floor);
            buf.put_u8(u8::from(*available));
        }
        Message::StateTransferResponse { checkpoint } => match checkpoint {
            Some(bytes) => {
                buf.put_u8(1);
                buf.put_u32(bytes.len() as u32);
                buf.put_slice(bytes);
            }
            None => buf.put_u8(0),
        },
        Message::ErrorReply {
            unavailable,
            detail,
        } => {
            buf.put_u8(u8::from(*unavailable));
            encode_string(buf, detail);
        }
    }
}

/// Decodes one [`Envelope`] from `buf`.
///
/// # Errors
///
/// [`Error::Corruption`] on truncation or malformed fields;
/// [`Error::Protocol`] on an unknown message tag.
pub fn decode_message(buf: &mut Bytes) -> Result<Envelope> {
    need(buf, 9, "envelope header")?;
    let request_id = buf.get_u64();
    let tag = buf.get_u8();
    let message = match tag {
        0 => Message::Hello {
            node: decode_string(buf, "hello node name")?,
        },
        1 => Message::HelloAck {
            node: decode_string(buf, "hello-ack node name")?,
        },
        2 => {
            need(buf, 4, "certify replica id")?;
            let replica = ReplicaId(buf.get_u32());
            let start_version = decode_version(buf)?;
            let replica_version = decode_version(buf)?;
            let writeset = decode_writeset(buf)?;
            Message::CertifyRequest(CertificationRequest {
                replica,
                start_version,
                writeset,
                replica_version,
            })
        }
        3 => {
            let decision = decode_decision(buf)?;
            need(buf, 1, "commit-version flag")?;
            let commit_version = if buf.get_u8() != 0 {
                Some(decode_version(buf)?)
            } else {
                None
            };
            let system_version = decode_version(buf)?;
            need(buf, 4, "remote-writeset count")?;
            let count = buf.get_u32() as usize;
            let mut remote_writesets = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                remote_writesets.push(decode_remote_writeset(buf)?);
            }
            Message::CertifyDecision(CertificationResponse {
                decision,
                commit_version,
                remote_writesets,
                system_version,
            })
        }
        4 => Message::FetchWritesets {
            since: decode_version(buf)?,
        },
        5 => {
            need(buf, 4, "writeset-batch count")?;
            let count = buf.get_u32() as usize;
            let mut writesets = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                writesets.push(decode_remote_writeset(buf)?);
            }
            Message::WritesetBatch { writesets }
        }
        6 => Message::StatusRequest,
        7 => {
            let system_version = decode_version(buf)?;
            let truncation_floor = decode_version(buf)?;
            need(buf, 1, "availability flag")?;
            Message::StatusResponse {
                system_version,
                truncation_floor,
                available: buf.get_u8() != 0,
            }
        }
        8 => Message::StateTransferRequest,
        9 => {
            need(buf, 1, "checkpoint flag")?;
            let checkpoint = if buf.get_u8() != 0 {
                need(buf, 4, "checkpoint length")?;
                let len = buf.get_u32() as usize;
                need(buf, len, "checkpoint payload")?;
                Some(buf.split_to(len).to_vec())
            } else {
                None
            };
            Message::StateTransferResponse { checkpoint }
        }
        10 => Message::Ping,
        11 => Message::Pong,
        12 => Message::Goodbye,
        13 => {
            need(buf, 1, "error flags")?;
            let unavailable = buf.get_u8() != 0;
            let detail = decode_string(buf, "error detail")?;
            Message::ErrorReply {
                unavailable,
                detail,
            }
        }
        other => {
            return Err(Error::Protocol(format!("unknown message tag {other}")));
        }
    };
    Ok(Envelope {
        request_id,
        message,
    })
}

/// Convenience: encodes an envelope straight into a complete wire frame.
#[must_use]
pub fn to_frame(envelope: &Envelope) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64);
    encode_message(&mut buf, envelope);
    crate::frame::encode_frame(&buf)
}

#[cfg(test)]
mod tests {
    use tashkent_common::{TableId, Value, WriteItem, WriteSet};

    use super::*;

    fn sample_ws() -> WriteSet {
        WriteSet::from_items(vec![
            WriteItem::update(TableId(1), 7, vec![("a".into(), Value::Int(1))]),
            WriteItem::update(TableId(2), 9, vec![("b".into(), Value::Text("x".into()))]),
        ])
    }

    fn round_trip(message: Message) {
        let envelope = Envelope {
            request_id: 42,
            message,
        };
        let mut buf = BytesMut::new();
        encode_message(&mut buf, &envelope);
        let mut bytes = buf.freeze();
        let decoded = decode_message(&mut bytes).unwrap();
        assert_eq!(decoded, envelope);
        assert_eq!(bytes.remaining(), 0, "codec must consume what it wrote");
    }

    #[test]
    fn every_variant_round_trips() {
        round_trip(Message::Hello {
            node: "replica-1".into(),
        });
        round_trip(Message::HelloAck {
            node: "certifier".into(),
        });
        round_trip(Message::CertifyRequest(CertificationRequest {
            replica: ReplicaId(3),
            start_version: Version(10),
            writeset: sample_ws(),
            replica_version: Version(8),
        }));
        round_trip(Message::CertifyDecision(CertificationResponse {
            decision: CertificationDecision::Abort {
                reason: "conflict at v11".into(),
                forced: true,
            },
            commit_version: None,
            remote_writesets: vec![RemoteWriteSet {
                commit_version: Version(11),
                writeset: Arc::new(sample_ws()),
                conflict_free_to: Version(9),
            }],
            system_version: Version(11),
        }));
        round_trip(Message::FetchWritesets { since: Version(5) });
        round_trip(Message::WritesetBatch { writesets: vec![] });
        round_trip(Message::StatusRequest);
        round_trip(Message::StatusResponse {
            system_version: Version(9),
            truncation_floor: Version(2),
            available: true,
        });
        round_trip(Message::StateTransferRequest);
        round_trip(Message::StateTransferResponse {
            checkpoint: Some(vec![1, 2, 3]),
        });
        round_trip(Message::StateTransferResponse { checkpoint: None });
        round_trip(Message::Ping);
        round_trip(Message::Pong);
        round_trip(Message::Goodbye);
        round_trip(Message::ErrorReply {
            unavailable: true,
            detail: "majority lost".into(),
        });
    }

    #[test]
    fn unknown_tag_is_a_protocol_error() {
        let mut buf = BytesMut::new();
        buf.put_u64(1);
        buf.put_u8(200);
        let mut bytes = buf.freeze();
        assert!(matches!(
            decode_message(&mut bytes),
            Err(Error::Protocol(_))
        ));
    }

    #[test]
    fn truncation_is_corruption_for_every_prefix() {
        let envelope = Envelope {
            request_id: 7,
            message: Message::CertifyRequest(CertificationRequest {
                replica: ReplicaId(0),
                start_version: Version(1),
                writeset: sample_ws(),
                replica_version: Version(1),
            }),
        };
        let mut buf = BytesMut::new();
        encode_message(&mut buf, &envelope);
        let full: Vec<u8> = buf.freeze().to_vec();
        for cut in 0..full.len() {
            let mut bytes = Bytes::copy_from_slice(&full[..cut]);
            assert!(
                matches!(decode_message(&mut bytes), Err(Error::Corruption(_))),
                "prefix of {cut} bytes must decode as corruption"
            );
        }
    }
}
