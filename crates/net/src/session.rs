//! The client side of a certifier session: [`RemoteCertifier`].
//!
//! One `RemoteCertifier` manages one logical session from a replica to the
//! certifier server.  It runs a small event loop on its own thread:
//!
//! * **dial + handshake** — connect, send [`Message::Hello`], wait for the
//!   [`Message::HelloAck`]; only then is the session open (and counted in
//!   the open-sessions gauge / event journal).
//! * **send queue with backpressure** — callers enqueue requests into a
//!   bounded queue; when it is full they wait briefly for space and
//!   otherwise fail with `Unavailable` rather than buffering unboundedly.
//! * **reconnect with backoff** — a lost connection fails every in-flight
//!   request (the resilient workload driver absorbs the `Unavailable`s),
//!   then redials with exponential backoff until the link heals, counting
//!   [`CounterId::NetReconnects`].
//! * **graceful close** — dropping the handle drains in-flight requests,
//!   sends [`Message::Goodbye`] and joins the loop.
//!
//! The blocking request API on top implements
//! [`CertifierService`], so a `CertifierHandle::Remote`
//! (`tashkent_proxy`) makes the entire proxy stack — certification,
//! bounded-staleness refresh, recovery catch-up — run over the wire
//! unchanged.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use tashkent_certifier::{CertificationRequest, CertificationResponse, RemoteWriteSet};
use tashkent_common::{
    metrics::MetricsRegistry, Component, CounterId, Error, Event, EventKind, GaugeId, Result,
    Version,
};
use tashkent_proxy::CertifierService;

use crate::message::{Envelope, Message};
use crate::transport::{FramedConn, Transport};

/// Tuning knobs for one client session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// This node's name, sent in the handshake (e.g. `replica-0`).
    pub node: String,
    /// The server endpoint to dial.
    pub endpoint: String,
    /// How long a caller waits for a response before giving up with
    /// `Unavailable`.
    pub request_timeout: Duration,
    /// First reconnect delay; doubles up to [`SessionConfig::backoff_ceiling`].
    pub backoff_floor: Duration,
    /// Largest reconnect delay.
    pub backoff_ceiling: Duration,
    /// Bounded send queue: callers beyond this wait for space, then fail.
    pub send_queue_limit: usize,
    /// Half-open link detector: if requests are in flight but *no* inbound
    /// traffic arrives for this long, the session declares the return path
    /// dead and tears the connection down for a redial.  A one-way severed
    /// link never surfaces as a send error — the bytes just vanish — so
    /// without this the session would sit "connected" forever while every
    /// request burned its full timeout.  Appended last so configurations
    /// built field-by-field before it existed keep their meaning.
    pub half_open_grace: Duration,
}

impl SessionConfig {
    /// Sensible defaults for an in-machine cluster.
    #[must_use]
    pub fn new(node: &str, endpoint: &str) -> SessionConfig {
        SessionConfig {
            node: node.to_string(),
            endpoint: endpoint.to_string(),
            request_timeout: Duration::from_secs(2),
            backoff_floor: Duration::from_millis(1),
            backoff_ceiling: Duration::from_millis(50),
            send_queue_limit: 256,
            // At the request timeout a healthy server must long since have
            // answered *something*, so this can never fire spuriously.
            half_open_grace: Duration::from_secs(2),
        }
    }
}

/// A pending request slot: `None` until the event loop fills it.
type Slot = Option<Result<Message>>;

#[derive(Default)]
struct ClientState {
    next_id: u64,
    outbound: Vec<Envelope>,
    pending: HashMap<u64, Slot>,
}

struct Shared {
    state: Mutex<ClientState>,
    /// Wakes requesters (a slot filled, or queue space freed).
    answered: Condvar,
    connected: AtomicBool,
    shutdown: AtomicBool,
    last_system_version: AtomicU64,
    last_floor: AtomicU64,
    metrics: Arc<MetricsRegistry>,
    node_index: usize,
}

impl Shared {
    /// Fails every in-flight request with `Unavailable` (connection lost).
    fn fail_all_pending(&self, why: &str) {
        let mut state = self.state.lock();
        for slot in state.pending.values_mut() {
            if slot.is_none() {
                *slot = Some(Err(Error::Unavailable(why.to_string())));
            }
        }
        state.outbound.clear();
        drop(state);
        self.answered.notify_all();
    }
}

/// A certifier reached over a wire; implements [`CertifierService`].
pub struct RemoteCertifier {
    shared: Arc<Shared>,
    config: SessionConfig,
    worker: Mutex<Option<thread::JoinHandle<()>>>,
}

impl RemoteCertifier {
    /// Starts the session: spawns the event loop, which dials (and keeps
    /// redialling) `config.endpoint` over `transport`.
    #[must_use]
    pub fn start(
        config: SessionConfig,
        transport: Arc<dyn Transport>,
        metrics: Arc<MetricsRegistry>,
    ) -> Arc<RemoteCertifier> {
        let node_index = config
            .node
            .rsplit('-')
            .next()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(usize::from(u16::MAX));
        let shared = Arc::new(Shared {
            state: Mutex::new(ClientState::default()),
            answered: Condvar::new(),
            connected: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            last_system_version: AtomicU64::new(0),
            last_floor: AtomicU64::new(0),
            metrics,
            node_index,
        });
        let loop_shared = Arc::clone(&shared);
        let loop_config = config.clone();
        let worker = thread::Builder::new()
            .name(format!("tknp-client-{}", config.node))
            .spawn(move || event_loop(&loop_shared, &loop_config, transport.as_ref()))
            .expect("spawn session event loop");
        Arc::new(RemoteCertifier {
            shared,
            config,
            worker: Mutex::new(Some(worker)),
        })
    }

    /// `true` once the handshake has completed and the wire is up.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.shared.connected.load(Ordering::Acquire)
    }

    /// Waits until the session is established (cluster start-up barrier).
    ///
    /// # Errors
    ///
    /// `Unavailable` if the deadline passes without a handshake.
    pub fn wait_connected(&self, deadline: Duration) -> Result<()> {
        let start = Instant::now();
        while !self.is_connected() {
            if start.elapsed() > deadline {
                return Err(Error::Unavailable(format!(
                    "session {} -> {} did not establish within {deadline:?}",
                    self.config.node, self.config.endpoint
                )));
            }
            thread::sleep(Duration::from_micros(200));
        }
        Ok(())
    }

    /// Waits until the session has *dropped* (half-open detection and
    /// fault tests use this to observe a teardown).
    ///
    /// # Errors
    ///
    /// `Unavailable` if the session is still up when the deadline passes.
    pub fn wait_disconnected(&self, deadline: Duration) -> Result<()> {
        let start = Instant::now();
        while self.is_connected() {
            if start.elapsed() > deadline {
                return Err(Error::Unavailable(format!(
                    "session {} -> {} still connected after {deadline:?}",
                    self.config.node, self.config.endpoint
                )));
            }
            thread::sleep(Duration::from_micros(200));
        }
        Ok(())
    }

    /// Sends one request and blocks for its response (or timeout).
    ///
    /// # Errors
    ///
    /// `Unavailable` when the wire is down, the send queue stays full, or
    /// the response does not arrive within the request timeout; server-side
    /// failures are rebuilt from the [`Message::ErrorReply`].
    pub fn request(&self, message: Message) -> Result<Message> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(Error::Unavailable("session is shut down".into()));
        }
        let id = {
            let mut state = self.shared.state.lock();
            // Backpressure: wait (briefly) for queue space instead of
            // growing without bound when the wire is slow or down.
            let space_deadline = Instant::now() + self.config.request_timeout;
            while state.outbound.len() >= self.config.send_queue_limit {
                let remaining = space_deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(Error::Unavailable("session send queue is full".into()));
                }
                self.shared.answered.wait_for(&mut state, remaining);
            }
            state.next_id += 1;
            let id = state.next_id;
            state.pending.insert(id, None);
            state.outbound.push(Envelope {
                request_id: id,
                message,
            });
            id
        };
        let deadline = Instant::now() + self.config.request_timeout;
        let mut state = self.shared.state.lock();
        loop {
            if let Some(slot) = state.pending.get_mut(&id) {
                if slot.is_some() {
                    let result = slot.take().expect("checked is_some");
                    state.pending.remove(&id);
                    return self.unwrap_reply(result);
                }
            } else {
                return Err(Error::Unavailable("request slot vanished".into()));
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                state.pending.remove(&id);
                return Err(Error::Unavailable(format!(
                    "request to {} timed out after {:?}",
                    self.config.endpoint, self.config.request_timeout
                )));
            }
            self.shared.answered.wait_for(&mut state, remaining);
        }
    }

    fn unwrap_reply(&self, result: Result<Message>) -> Result<Message> {
        match result? {
            Message::ErrorReply {
                unavailable: true,
                detail,
            } => Err(Error::Unavailable(detail)),
            Message::ErrorReply {
                unavailable: false,
                detail,
            } => Err(Error::Protocol(detail)),
            other => Ok(other),
        }
    }

    /// Fetches the newest sealed checkpoint from the certifier (recovery
    /// state transfer); `None` if it has never sealed one.
    ///
    /// # Errors
    ///
    /// `Unavailable` when the wire is down.
    pub fn state_transfer(&self) -> Result<Option<Vec<u8>>> {
        match self.request(Message::StateTransferRequest)? {
            Message::StateTransferResponse { checkpoint } => Ok(checkpoint),
            other => Err(Error::Protocol(format!(
                "expected state-transfer response, got {}",
                other.label()
            ))),
        }
    }

    /// Round-trips a ping (liveness probe; tests and the watchdog use it).
    ///
    /// # Errors
    ///
    /// `Unavailable` when the wire is down.
    pub fn ping(&self) -> Result<()> {
        match self.request(Message::Ping)? {
            Message::Pong => Ok(()),
            other => Err(Error::Protocol(format!(
                "expected pong, got {}",
                other.label()
            ))),
        }
    }

    fn status(&self) -> Result<(Version, Version, bool)> {
        match self.request(Message::StatusRequest)? {
            Message::StatusResponse {
                system_version,
                truncation_floor,
                available,
            } => {
                self.shared
                    .last_system_version
                    .fetch_max(system_version.value(), Ordering::AcqRel);
                self.shared
                    .last_floor
                    .fetch_max(truncation_floor.value(), Ordering::AcqRel);
                Ok((system_version, truncation_floor, available))
            }
            other => Err(Error::Protocol(format!(
                "expected status response, got {}",
                other.label()
            ))),
        }
    }

    /// Shuts the session down: drains in-flight requests, says goodbye,
    /// joins the event loop.  Idempotent.
    pub fn close(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.answered.notify_all();
        if let Some(worker) = self.worker.lock().take() {
            let _ = worker.join();
        }
    }
}

impl Drop for RemoteCertifier {
    fn drop(&mut self) {
        self.close();
    }
}

impl CertifierService for RemoteCertifier {
    fn certify(&self, request: &CertificationRequest) -> Result<CertificationResponse> {
        match self.request(Message::CertifyRequest(request.clone()))? {
            Message::CertifyDecision(response) => {
                self.shared
                    .last_system_version
                    .fetch_max(response.system_version.value(), Ordering::AcqRel);
                Ok(response)
            }
            other => Err(Error::Protocol(format!(
                "expected certify decision, got {}",
                other.label()
            ))),
        }
    }

    fn writesets_after(&self, since: Version) -> Vec<RemoteWriteSet> {
        match self.request(Message::FetchWritesets { since }) {
            Ok(Message::WritesetBatch { writesets }) => writesets,
            // Wire down (or a malformed reply): report no progress; the
            // proxy's bounded-staleness refresh simply retries later.
            Ok(_) | Err(_) => Vec::new(),
        }
    }

    fn system_version(&self) -> Version {
        match self.status() {
            Ok((v, _, _)) => v,
            Err(_) => Version(self.shared.last_system_version.load(Ordering::Acquire)),
        }
    }

    fn is_available(&self) -> bool {
        self.is_connected() && matches!(self.status(), Ok((_, _, true)))
    }

    fn truncation_floor(&self) -> Version {
        match self.status() {
            Ok((_, floor, _)) => floor,
            Err(_) => Version(self.shared.last_floor.load(Ordering::Acquire)),
        }
    }
}

/// How long the event loop parks when a tick moved nothing.
const IDLE_PARK: Duration = Duration::from_micros(100);

/// How long a graceful close keeps draining in-flight requests.
const DRAIN_DEADLINE: Duration = Duration::from_millis(50);

/// How long the dialler waits for the `HelloAck`.
const HANDSHAKE_DEADLINE: Duration = Duration::from_millis(500);

fn event_loop(shared: &Shared, config: &SessionConfig, transport: &dyn Transport) {
    let mut backoff = config.backoff_floor;
    let mut sessions_opened = 0u64;
    while !shared.shutdown.load(Ordering::Acquire) {
        // Phase 1: establish a session.
        let conn = match establish(shared, config, transport) {
            Some(conn) => conn,
            None => {
                shared.fail_all_pending("certifier wire is down");
                // Back off, but keep watching the shutdown flag.
                let until = Instant::now() + backoff;
                while Instant::now() < until && !shared.shutdown.load(Ordering::Acquire) {
                    thread::sleep(IDLE_PARK);
                }
                backoff = (backoff * 2).min(config.backoff_ceiling);
                continue;
            }
        };
        backoff = config.backoff_floor;
        sessions_opened += 1;
        if sessions_opened > 1 {
            shared.metrics.incr(CounterId::NetReconnects);
        }
        shared.connected.store(true, Ordering::Release);
        shared.metrics.gauge_add(GaugeId::OpenSessions, 1);
        shared.metrics.emit(
            Event::new(Component::Proxy, EventKind::SessionOpen).node(shared.node_index),
        );

        // Phase 2: pump the session until it breaks or we shut down.
        let why = pump_session(shared, config, conn);

        shared.connected.store(false, Ordering::Release);
        shared.metrics.gauge_add(GaugeId::OpenSessions, -1);
        shared.metrics.emit(
            Event::new(Component::Proxy, EventKind::SessionClose).node(shared.node_index),
        );
        if !shared.shutdown.load(Ordering::Acquire) {
            shared.fail_all_pending(&why);
        }
    }
    shared.fail_all_pending("session is shut down");
}

/// Dials and completes the handshake; `None` on any failure (caller backs
/// off and retries).
fn establish(
    shared: &Shared,
    config: &SessionConfig,
    transport: &dyn Transport,
) -> Option<FramedConn> {
    let conn = transport.dial(&config.endpoint).ok()?;
    let mut framed = FramedConn::new(conn);
    framed.queue(
        &Envelope {
            request_id: 0,
            message: Message::Hello {
                node: config.node.clone(),
            },
        },
        &shared.metrics,
    );
    let deadline = Instant::now() + HANDSHAKE_DEADLINE;
    while Instant::now() < deadline && !shared.shutdown.load(Ordering::Acquire) {
        framed.flush(&shared.metrics).ok()?;
        for envelope in framed.poll(&shared.metrics).ok()? {
            if matches!(envelope.message, Message::HelloAck { .. }) {
                return Some(framed);
            }
        }
        thread::sleep(IDLE_PARK);
    }
    None
}

/// Drives one established session; returns the reason it ended.
fn pump_session(shared: &Shared, config: &SessionConfig, mut framed: FramedConn) -> String {
    // Half-open link detection: a one-way cut of the wire never errors a
    // send — bytes just vanish — so the pump watches for the *absence* of
    // response traffic while requests are outstanding and declares the
    // session dead after `half_open_grace`.  The timer only runs while
    // something is awaited: an idle session owes us no traffic.
    let mut waiting_since = Instant::now();
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            graceful_close(shared, &mut framed);
            return "session is shut down".into();
        }
        let mut moved = false;

        // Outbound: stage queued requests, then push bytes.
        let has_pending = {
            let mut state = shared.state.lock();
            let queued: Vec<Envelope> = state.outbound.drain(..).collect();
            let has_pending = state.pending.values().any(Option::is_none);
            drop(state);
            if !queued.is_empty() {
                moved = true;
                for envelope in &queued {
                    framed.queue(envelope, &shared.metrics);
                }
                // Queue space freed: wake writers blocked on backpressure.
                shared.answered.notify_all();
            }
            has_pending
        };
        if !has_pending {
            waiting_since = Instant::now();
        } else if waiting_since.elapsed() > config.half_open_grace {
            return format!(
                "no response traffic for {:?} with requests in flight; \
                 assuming a half-open link",
                config.half_open_grace
            );
        }
        match framed.flush(&shared.metrics) {
            Ok(flushed) => moved |= flushed,
            Err(e) => return e.to_string(),
        }

        // Inbound: match responses to pending requests.
        match framed.poll(&shared.metrics) {
            Ok(envelopes) => {
                if !envelopes.is_empty() {
                    moved = true;
                    waiting_since = Instant::now();
                    let mut state = shared.state.lock();
                    for envelope in envelopes {
                        if let Some(slot) = state.pending.get_mut(&envelope.request_id) {
                            *slot = Some(Ok(envelope.message));
                        }
                        // Responses to abandoned (timed-out) requests are
                        // dropped on the floor, matching their caller.
                    }
                    drop(state);
                    shared.answered.notify_all();
                }
            }
            Err(e) => return e.to_string(),
        }

        if !moved {
            thread::sleep(IDLE_PARK);
        }
    }
}

/// Drains in-flight work briefly, then says goodbye.
fn graceful_close(shared: &Shared, framed: &mut FramedConn) {
    let deadline = Instant::now() + DRAIN_DEADLINE;
    while Instant::now() < deadline {
        let drained = {
            let state = shared.state.lock();
            state.outbound.is_empty() && state.pending.is_empty()
        } && framed.backlog() == 0;
        if drained {
            break;
        }
        let mut state = shared.state.lock();
        let queued: Vec<Envelope> = state.outbound.drain(..).collect();
        drop(state);
        for envelope in &queued {
            framed.queue(envelope, &shared.metrics);
        }
        if framed.flush(&shared.metrics).is_err() {
            return;
        }
        if let Ok(envelopes) = framed.poll(&shared.metrics) {
            let mut state = shared.state.lock();
            for envelope in envelopes {
                if let Some(slot) = state.pending.get_mut(&envelope.request_id) {
                    *slot = Some(Ok(envelope.message));
                }
            }
            drop(state);
            shared.answered.notify_all();
        } else {
            return;
        }
        thread::sleep(IDLE_PARK);
    }
    framed.queue(
        &Envelope {
            request_id: 0,
            message: Message::Goodbye,
        },
        &shared.metrics,
    );
    let _ = framed.flush(&shared.metrics);
}
