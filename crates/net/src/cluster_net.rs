//! [`ClusterNet`]: the whole cluster's networking in one object.
//!
//! `Cluster::new` (in the `tashkent` crate) builds one of these whenever
//! `ClusterConfig::transport` is networked.  It starts the certifier's
//! [`NetServer`], dials one [`RemoteCertifier`] session per replica, and
//! hands each replica a [`CertifierHandle::Remote`] whose data plane rides
//! the wire while the control plane (fault injection, checkpoints, log
//! inspection) stays on the colocated in-process handle.
//!
//! Under the loopback transport it also exposes the link-fault hooks the
//! fault executor drives: sever or heal the link between one replica (or
//! all of them) and the certifier.  Each state change lands in the event
//! journal as [`EventKind::LinkFault`].

use std::sync::Arc;
use std::time::Duration;

use tashkent_common::{
    metrics::MetricsRegistry, Component, Error, Event, EventKind, Result, TransportKind,
};
use tashkent_proxy::CertifierHandle;

use crate::loopback::LoopbackNet;
use crate::server::NetServer;
use crate::session::{RemoteCertifier, SessionConfig};
use crate::tcp::TcpTransport;
use crate::transport::Transport;

/// The loopback endpoint name the certifier listens on.
pub const CERTIFIER_ENDPOINT: &str = "certifier";

/// How long cluster start-up waits for every session to establish.
const CONNECT_DEADLINE: Duration = Duration::from_secs(5);

/// The name of replica `i`'s endpoint / session.
fn replica_name(replica: usize) -> String {
    format!("replica-{replica}")
}

/// One cluster's network: the certifier server plus one client session per
/// replica.
pub struct ClusterNet {
    kind: TransportKind,
    loopback: Option<Arc<LoopbackNet>>,
    colocated: CertifierHandle,
    metrics: Arc<MetricsRegistry>,
    // Declared before `server` so sessions say goodbye while the server
    // loop is still answering.
    clients: Vec<Arc<RemoteCertifier>>,
    server: NetServer,
}

impl ClusterNet {
    /// Starts the server and one connected session per replica.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for [`TransportKind::InProcess`] (there is
    /// no network to start); otherwise whatever binding, dialling or the
    /// start-up handshake barrier reports.
    pub fn start(
        kind: TransportKind,
        colocated: CertifierHandle,
        replicas: usize,
        metrics: Arc<MetricsRegistry>,
    ) -> Result<ClusterNet> {
        let (loopback, server) = match kind {
            TransportKind::InProcess => {
                return Err(Error::InvalidConfig(
                    "ClusterNet::start needs a networked transport".into(),
                ));
            }
            TransportKind::Loopback => {
                let net = LoopbackNet::shared();
                let server = NetServer::start(
                    CERTIFIER_ENDPOINT,
                    colocated.clone(),
                    &net.transport(CERTIFIER_ENDPOINT),
                    CERTIFIER_ENDPOINT,
                    Arc::clone(&metrics),
                )?;
                (Some(net), server)
            }
            TransportKind::Tcp => {
                let server = NetServer::start(
                    CERTIFIER_ENDPOINT,
                    colocated.clone(),
                    &TcpTransport::new(),
                    "127.0.0.1:0",
                    Arc::clone(&metrics),
                )?;
                (None, server)
            }
        };
        let mut clients = Vec::with_capacity(replicas);
        for replica in 0..replicas {
            let name = replica_name(replica);
            let transport: Arc<dyn Transport> = match &loopback {
                Some(net) => Arc::new(net.transport(&name)),
                None => Arc::new(TcpTransport::new()),
            };
            clients.push(RemoteCertifier::start(
                SessionConfig::new(&name, server.endpoint()),
                transport,
                Arc::clone(&metrics),
            ));
        }
        for client in &clients {
            client.wait_connected(CONNECT_DEADLINE)?;
        }
        Ok(ClusterNet {
            kind,
            loopback,
            colocated,
            metrics,
            clients,
            server,
        })
    }

    /// Which transport this network runs on.
    #[must_use]
    pub fn kind(&self) -> TransportKind {
        self.kind
    }

    /// The endpoint the certifier server answers at.
    #[must_use]
    pub fn endpoint(&self) -> &str {
        self.server.endpoint()
    }

    /// The handle replica `replica` should talk to the certifier through:
    /// data plane over this replica's session, control plane colocated.
    ///
    /// # Panics
    ///
    /// If `replica` is out of range (a cluster wiring bug).
    #[must_use]
    pub fn replica_handle(&self, replica: usize) -> CertifierHandle {
        let service: Arc<RemoteCertifier> = Arc::clone(&self.clients[replica]);
        CertifierHandle::Remote {
            service,
            colocated: Box::new(self.colocated.clone()),
        }
    }

    /// The session object for one replica (tests poke it directly).
    #[must_use]
    pub fn client(&self, replica: usize) -> &Arc<RemoteCertifier> {
        &self.clients[replica]
    }

    fn emit_link_fault(&self, replica: usize) {
        self.metrics
            .emit(Event::new(Component::Replica, EventKind::LinkFault).node(replica));
    }

    /// Severs the loopback link between one replica and the certifier.
    /// Returns `false` (a no-op) on non-loopback transports or if already
    /// severed.
    pub fn sever_certifier_link(&self, replica: usize) -> bool {
        let Some(net) = &self.loopback else {
            return false;
        };
        let changed = net.sever(&replica_name(replica), CERTIFIER_ENDPOINT);
        if changed {
            self.emit_link_fault(replica);
        }
        changed
    }

    /// Severs only one *direction* of a replica's loopback link to the
    /// certifier — the half-open link.  `to_certifier = true` drops the
    /// replica→certifier direction (requests vanish, the replica's sends
    /// still "succeed"); `false` drops certifier→replica (requests arrive
    /// and are served, the responses vanish — the nastier half).  Returns
    /// `false` (a no-op) on non-loopback transports or if that direction
    /// was already cut.
    pub fn sever_certifier_link_one_way(&self, replica: usize, to_certifier: bool) -> bool {
        let Some(net) = &self.loopback else {
            return false;
        };
        let name = replica_name(replica);
        let (from, to) = if to_certifier {
            (name.as_str(), CERTIFIER_ENDPOINT)
        } else {
            (CERTIFIER_ENDPOINT, name.as_str())
        };
        let changed = net.sever_one_way(from, to);
        if changed {
            self.emit_link_fault(replica);
        }
        changed
    }

    /// Enables seeded random connection resets on the loopback network
    /// (packet loss as the session layer experiences it).  `rate = 0.0`
    /// disables.  Returns `false` on non-loopback transports.
    pub fn set_packet_loss(&self, seed: u64, rate: f64) -> bool {
        let Some(net) = &self.loopback else {
            return false;
        };
        net.set_drop_rate(seed, rate);
        true
    }

    /// Heals the loopback link between one replica and the certifier.
    pub fn heal_certifier_link(&self, replica: usize) -> bool {
        let Some(net) = &self.loopback else {
            return false;
        };
        let changed = net.heal(&replica_name(replica), CERTIFIER_ENDPOINT);
        if changed {
            self.emit_link_fault(replica);
        }
        changed
    }

    /// Severs *every* replica's link to the certifier — the full
    /// replica↔certifier partition.  Returns `true` if any link changed.
    pub fn partition_certifier(&self) -> bool {
        let mut any = false;
        // Deliberately not `Iterator::any`: every link must be cut, so the
        // loop must not short-circuit on the first change.
        for replica in 0..self.clients.len() {
            any |= self.sever_certifier_link(replica);
        }
        any
    }

    /// Heals every severed link.  Returns `true` if any link changed.
    pub fn heal_all_links(&self) -> bool {
        let Some(net) = &self.loopback else {
            return false;
        };
        let healed = net.heal_all();
        if healed > 0 {
            // One journal entry per replica keeps the timeline per-node.
            for replica in 0..self.clients.len() {
                self.emit_link_fault(replica);
            }
        }
        healed > 0
    }

    /// `true` while the link between `replica` and the certifier is
    /// severed.
    #[must_use]
    pub fn is_link_severed(&self, replica: usize) -> bool {
        self.loopback
            .as_ref()
            .is_some_and(|net| net.is_severed(&replica_name(replica), CERTIFIER_ENDPOINT))
    }

    /// Shuts every session down, then the server.  Idempotent; `Drop` does
    /// the same.
    pub fn shutdown(&self) {
        for client in &self.clients {
            client.close();
        }
        self.server.stop();
    }
}

impl Drop for ClusterNet {
    fn drop(&mut self) {
        self.shutdown();
    }
}
