//! The deterministic in-memory loopback transport.
//!
//! [`LoopbackNet`] is a tiny in-process "network": listeners register under
//! logical endpoint names (`certifier`, `replica-0`, ...), dialling pushes a
//! connection into the listener's backlog, and each established connection
//! is a pair of bounded in-memory byte queues.  Because nothing leaves the
//! process, runs are as reproducible as the in-process cluster — which is
//! exactly what the fault harness needs.
//!
//! Fault injection hooks:
//!
//! * [`LoopbackNet::sever`] / [`LoopbackNet::heal`] cut or restore the link
//!   between two endpoints.  A severed link kills established connections
//!   (both directions) *and* refuses new dials, so a partition behaves like
//!   a real one: in-flight requests fail with
//!   [`Error::Unavailable`] and
//!   reconnect attempts keep failing until the link heals.
//! * [`LoopbackNet::sever_one_way`] cuts only one *direction*: bytes sent
//!   that way silently vanish while the reverse direction keeps flowing —
//!   the half-open link of a real asymmetric partition.  The sender sees
//!   successful sends (no error!), which is exactly what makes half-open
//!   links nasty and what the session layer's no-response-traffic detector
//!   exists to catch.  New dials are refused while either direction is cut
//!   (connection setup needs both paths).
//! * [`LoopbackNet::set_drop_rate`] makes the network randomly reset
//!   established connections (seeded, so a given seed yields the same drop
//!   points for a serial caller) — this is how the session manager's
//!   reconnect path is exercised.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tashkent_common::{Error, Result};

use crate::transport::{Connection, Listener, Transport};

/// Per-direction buffered-byte cap; a sender whose peer is this far behind
/// sees `Ok(0)` (would block) and must poll again — backpressure, not OOM.
const PIPE_CAPACITY: usize = 8 << 20;

/// A link name pair in canonical (sorted) order, so `sever(a, b)` and
/// `sever(b, a)` name the same link.
fn link_key(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

#[derive(Default)]
struct NetState {
    /// Accept backlog per listening endpoint (`None` once closed).
    backlogs: HashMap<String, VecDeque<LoopbackConn>>,
    /// Currently severed links.
    severed: HashSet<(String, String)>,
    /// Directionally severed links, as `(from, to)`: bytes sent from →
    /// to are silently discarded, the reverse direction still flows.
    severed_one_way: HashSet<(String, String)>,
    /// Seeded connection-reset injection.
    drop_rng: Option<(StdRng, f64)>,
}

/// The shared in-memory network: a registry of listeners and link states.
pub struct LoopbackNet {
    state: Mutex<NetState>,
}

impl Default for LoopbackNet {
    fn default() -> Self {
        LoopbackNet::new()
    }
}

impl LoopbackNet {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> LoopbackNet {
        LoopbackNet {
            state: Mutex::new(NetState::default()),
        }
    }

    /// Creates an [`Arc`]-shared network (the usual way to use one).
    #[must_use]
    pub fn shared() -> Arc<LoopbackNet> {
        Arc::new(LoopbackNet::new())
    }

    /// A transport view of this network for a node named `local`; the name
    /// identifies the node's end of every link it dials.
    #[must_use]
    pub fn transport(self: &Arc<Self>, local: &str) -> LoopbackTransport {
        LoopbackTransport {
            net: Arc::clone(self),
            local: local.to_string(),
        }
    }

    /// Severs the link between two endpoints: established connections die
    /// and new dials fail until [`LoopbackNet::heal`].  Returns `true` if
    /// the link was previously healthy.
    pub fn sever(&self, a: &str, b: &str) -> bool {
        self.state.lock().severed.insert(link_key(a, b))
    }

    /// Heals a severed link — the symmetric sever *and* any one-way severs
    /// between the pair.  Returns `true` if anything was severed.
    pub fn heal(&self, a: &str, b: &str) -> bool {
        let mut state = self.state.lock();
        let sym = state.severed.remove(&link_key(a, b));
        let fwd = state.severed_one_way.remove(&(a.to_string(), b.to_string()));
        let rev = state.severed_one_way.remove(&(b.to_string(), a.to_string()));
        sym || fwd || rev
    }

    /// Severs only the `from` → `to` direction: bytes sent that way are
    /// silently dropped (the sender does *not* get an error — half-open
    /// semantics), while `to` → `from` keeps flowing.  New dials between
    /// the pair are refused in both roles, since connection setup needs a
    /// round trip.  Returns `true` if the direction was previously open.
    pub fn sever_one_way(&self, from: &str, to: &str) -> bool {
        self.state
            .lock()
            .severed_one_way
            .insert((from.to_string(), to.to_string()))
    }

    /// Heals only the `from` → `to` direction.  Returns `true` if it was
    /// severed.
    pub fn heal_one_way(&self, from: &str, to: &str) -> bool {
        self.state
            .lock()
            .severed_one_way
            .remove(&(from.to_string(), to.to_string()))
    }

    /// Heals every severed link; returns how many there were (one-way
    /// severs counted individually).
    pub fn heal_all(&self) -> usize {
        let mut state = self.state.lock();
        let n = state.severed.len() + state.severed_one_way.len();
        state.severed.clear();
        state.severed_one_way.clear();
        n
    }

    /// `true` if the link between `a` and `b` is currently severed
    /// symmetrically.
    #[must_use]
    pub fn is_severed(&self, a: &str, b: &str) -> bool {
        self.state.lock().severed.contains(&link_key(a, b))
    }

    /// `true` if the `from` → `to` direction is currently severed.
    #[must_use]
    pub fn is_severed_one_way(&self, from: &str, to: &str) -> bool {
        self.state
            .lock()
            .severed_one_way
            .contains(&(from.to_string(), to.to_string()))
    }

    /// Enables seeded random connection resets: each send has probability
    /// `rate` of resetting its connection first.  `rate = 0.0` disables.
    pub fn set_drop_rate(&self, seed: u64, rate: f64) {
        let mut state = self.state.lock();
        state.drop_rng = if rate > 0.0 {
            Some((StdRng::seed_from_u64(seed), rate))
        } else {
            None
        };
    }

    fn roll_drop(&self) -> bool {
        let mut state = self.state.lock();
        match &mut state.drop_rng {
            Some((rng, rate)) => {
                let rate = *rate;
                rng.gen_bool(rate)
            }
            None => false,
        }
    }
}

/// A node-scoped view of a [`LoopbackNet`] implementing [`Transport`].
pub struct LoopbackTransport {
    net: Arc<LoopbackNet>,
    local: String,
}

impl Transport for LoopbackTransport {
    fn listen(&self, endpoint: &str) -> Result<Box<dyn Listener>> {
        let mut state = self.net.state.lock();
        if state.backlogs.contains_key(endpoint) {
            return Err(Error::InvalidConfig(format!(
                "loopback endpoint '{endpoint}' is already listening"
            )));
        }
        state.backlogs.insert(endpoint.to_string(), VecDeque::new());
        Ok(Box::new(LoopbackListener {
            net: Arc::clone(&self.net),
            endpoint: endpoint.to_string(),
        }))
    }

    fn dial(&self, endpoint: &str) -> Result<Box<dyn Connection>> {
        let link = link_key(&self.local, endpoint);
        let mut state = self.net.state.lock();
        // A dial needs a round trip, so either a symmetric sever or a cut
        // in *either* direction refuses it.
        if state.severed.contains(&link)
            || state
                .severed_one_way
                .contains(&(self.local.clone(), endpoint.to_string()))
            || state
                .severed_one_way
                .contains(&(endpoint.to_string(), self.local.clone()))
        {
            return Err(Error::Unavailable(format!(
                "loopback link {} <-> {} is severed",
                self.local, endpoint
            )));
        }
        let (client, server) = LoopbackConn::pair(
            Arc::clone(&self.net),
            link,
            endpoint.to_string(),
            self.local.clone(),
        );
        match state.backlogs.get_mut(endpoint) {
            Some(backlog) => {
                backlog.push_back(server);
                Ok(Box::new(client))
            }
            None => Err(Error::Unavailable(format!(
                "no loopback listener at '{endpoint}'"
            ))),
        }
    }
}

struct LoopbackListener {
    net: Arc<LoopbackNet>,
    endpoint: String,
}

impl Listener for LoopbackListener {
    fn try_accept(&mut self) -> Result<Option<Box<dyn Connection>>> {
        let mut state = self.net.state.lock();
        match state.backlogs.get_mut(&self.endpoint) {
            Some(backlog) => Ok(backlog
                .pop_front()
                .map(|conn| Box::new(conn) as Box<dyn Connection>)),
            None => Err(Error::Unavailable(format!(
                "loopback listener '{}' is closed",
                self.endpoint
            ))),
        }
    }

    fn local_endpoint(&self) -> String {
        self.endpoint.clone()
    }
}

impl Drop for LoopbackListener {
    fn drop(&mut self) {
        self.net.state.lock().backlogs.remove(&self.endpoint);
    }
}

/// One direction of a loopback pipe.
#[derive(Default)]
struct Pipe {
    bytes: VecDeque<u8>,
    closed: bool,
}

/// One end of an established loopback connection.
struct LoopbackConn {
    net: Arc<LoopbackNet>,
    link: (String, String),
    local_name: String,
    peer_name: String,
    /// Bytes flowing towards this end.
    inbound: Arc<Mutex<Pipe>>,
    /// Bytes flowing towards the peer.
    outbound: Arc<Mutex<Pipe>>,
}

impl LoopbackConn {
    fn pair(
        net: Arc<LoopbackNet>,
        link: (String, String),
        dialed: String,
        dialer: String,
    ) -> (LoopbackConn, LoopbackConn) {
        let a = Arc::new(Mutex::new(Pipe::default()));
        let b = Arc::new(Mutex::new(Pipe::default()));
        let client = LoopbackConn {
            net: Arc::clone(&net),
            link: link.clone(),
            local_name: dialer.clone(),
            peer_name: dialed.clone(),
            inbound: Arc::clone(&a),
            outbound: Arc::clone(&b),
        };
        let server = LoopbackConn {
            net,
            link,
            local_name: dialed,
            peer_name: dialer,
            inbound: b,
            outbound: a,
        };
        (client, server)
    }

    fn reset(&self) {
        self.inbound.lock().closed = true;
        self.outbound.lock().closed = true;
    }

    fn severed(&self) -> bool {
        self.net
            .state
            .lock()
            .severed
            .contains(&self.link)
    }

    /// `true` while the *outgoing* direction of this end is one-way
    /// severed: sends then vanish silently (half-open link).
    fn outbound_cut(&self) -> bool {
        self.net
            .state
            .lock()
            .severed_one_way
            .contains(&(self.local_name.clone(), self.peer_name.clone()))
    }
}

impl Connection for LoopbackConn {
    fn try_send(&mut self, bytes: &[u8]) -> Result<usize> {
        if self.severed() {
            self.reset();
        }
        if self.net.roll_drop() {
            self.reset();
        }
        // Half-open link: the send "succeeds" — the sender has no way to
        // tell — but the bytes never reach the peer.  Closed-pipe errors
        // still win (checked below) so resets are not masked.
        if self.outbound_cut() && !self.outbound.lock().closed {
            return Ok(bytes.len());
        }
        let mut pipe = self.outbound.lock();
        if pipe.closed {
            return Err(Error::Unavailable(format!(
                "loopback connection to {} is closed",
                self.peer_name
            )));
        }
        let room = PIPE_CAPACITY.saturating_sub(pipe.bytes.len());
        let n = bytes.len().min(room);
        pipe.bytes.extend(&bytes[..n]);
        Ok(n)
    }

    fn try_recv(&mut self, buf: &mut [u8]) -> Result<usize> {
        if self.severed() {
            self.reset();
        }
        let mut pipe = self.inbound.lock();
        let n = pipe.bytes.len().min(buf.len());
        if n > 0 {
            for slot in buf.iter_mut().take(n) {
                *slot = pipe.bytes.pop_front().expect("counted above");
            }
            return Ok(n);
        }
        if pipe.closed {
            return Err(Error::Unavailable(format!(
                "loopback connection to {} is closed",
                self.peer_name
            )));
        }
        Ok(0)
    }

    fn peer(&self) -> String {
        self.peer_name.clone()
    }
}

impl Drop for LoopbackConn {
    fn drop(&mut self) {
        self.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn establish(
        net: &Arc<LoopbackNet>,
    ) -> (Box<dyn Connection>, Box<dyn Connection>, Box<dyn Listener>) {
        let server_side = net.transport("certifier");
        let mut listener = server_side.listen("certifier").unwrap();
        let client = net.transport("replica-0").dial("certifier").unwrap();
        let server = listener.try_accept().unwrap().unwrap();
        (client, server, listener)
    }

    #[test]
    fn bytes_flow_both_ways() {
        let net = LoopbackNet::shared();
        let (mut client, mut server, _listener) = establish(&net);
        assert_eq!(client.try_send(b"ping").unwrap(), 4);
        let mut buf = [0u8; 16];
        assert_eq!(server.try_recv(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");
        assert_eq!(server.try_send(b"pong").unwrap(), 4);
        assert_eq!(client.try_recv(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"pong");
        assert_eq!(client.try_recv(&mut buf).unwrap(), 0, "empty = would block");
        assert_eq!(client.peer(), "certifier");
        assert_eq!(server.peer(), "replica-0");
    }

    #[test]
    fn severed_links_kill_connections_and_refuse_dials() {
        let net = LoopbackNet::shared();
        let (mut client, _server, _listener) = establish(&net);
        assert!(net.sever("replica-0", "certifier"));
        assert!(client.try_send(b"x").is_err());
        assert!(net
            .transport("replica-0")
            .dial("certifier")
            .is_err_and(|e| e.is_unavailable()));
        // Another replica's link is unaffected.
        assert!(net.transport("replica-1").dial("certifier").is_ok());
        assert_eq!(net.heal_all(), 1);
        assert!(net.transport("replica-0").dial("certifier").is_ok());
    }

    #[test]
    fn peer_drop_surfaces_as_unavailable_after_drain() {
        let net = LoopbackNet::shared();
        let (mut client, server, _listener) = establish(&net);
        assert_eq!(client.try_send(b"last words").unwrap(), 10);
        drop(server);
        // Buffered bytes are still deliverable... to nobody here; the
        // client's own reads see the close.
        let mut buf = [0u8; 4];
        assert!(client.try_recv(&mut buf).is_err());
        assert!(client.try_send(b"x").is_err());
    }

    #[test]
    fn one_way_sever_drops_bytes_silently_one_direction() {
        let net = LoopbackNet::shared();
        let (mut client, mut server, _listener) = establish(&net);
        assert!(net.sever_one_way("replica-0", "certifier"));
        // The cut direction: the sender sees success, the peer nothing —
        // the half-open signature.
        assert_eq!(client.try_send(b"lost").unwrap(), 4);
        let mut buf = [0u8; 16];
        assert_eq!(server.try_recv(&mut buf).unwrap(), 0);
        // The reverse direction still flows.
        assert_eq!(server.try_send(b"pong").unwrap(), 4);
        assert_eq!(client.try_recv(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"pong");
        // Dials are refused in both roles while one direction is cut.
        assert!(net
            .transport("replica-0")
            .dial("certifier")
            .is_err_and(|e| e.is_unavailable()));
        assert!(net.is_severed_one_way("replica-0", "certifier"));
        assert!(!net.is_severed_one_way("certifier", "replica-0"));
        // Healing the direction restores it without ever resetting the
        // established connection.
        assert!(net.heal_one_way("replica-0", "certifier"));
        assert_eq!(client.try_send(b"back").unwrap(), 4);
        assert_eq!(server.try_recv(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"back");
    }

    #[test]
    fn symmetric_heal_and_heal_all_clear_one_way_severs() {
        let net = LoopbackNet::shared();
        net.sever_one_way("certifier", "replica-0");
        assert!(net.heal("replica-0", "certifier"), "heal covers directions");
        assert!(!net.is_severed_one_way("certifier", "replica-0"));
        net.sever_one_way("certifier", "replica-1");
        net.sever("replica-2", "certifier");
        assert_eq!(net.heal_all(), 2);
        assert!(net.transport("replica-1").dial("certifier").is_err(), "no listener, but not severed");
    }

    #[test]
    fn seeded_drops_reset_connections() {
        let net = LoopbackNet::shared();
        net.set_drop_rate(0xD20B, 1.0);
        let (mut client, _server, listener) = establish(&net);
        assert!(client.try_send(b"x").is_err(), "rate 1.0 drops immediately");
        net.set_drop_rate(0, 0.0);
        drop(listener);
        let (mut client, _server2, _listener2) = establish(&net);
        assert!(client.try_send(b"x").is_ok());
    }

    #[test]
    fn listener_names_are_exclusive_until_dropped() {
        let net = LoopbackNet::shared();
        let t = net.transport("certifier");
        let listener = t.listen("certifier").unwrap();
        assert!(t.listen("certifier").is_err());
        drop(listener);
        assert!(t.listen("certifier").is_ok());
    }
}
