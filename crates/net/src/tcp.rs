//! The TCP transport: real non-blocking `std::net` sockets.
//!
//! Endpoints are socket addresses; listening on `127.0.0.1:0` binds a free
//! port, and [`Listener::local_endpoint`] reports the actual address for
//! clients to dial.  No async runtime is involved: sockets are put into
//! non-blocking mode and the event loops poll them like any other
//! [`Connection`].

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};

use tashkent_common::{Error, Result};

use crate::transport::{Connection, Listener, Transport};

/// The [`Transport`] over real TCP sockets.
#[derive(Debug, Default, Clone, Copy)]
pub struct TcpTransport;

impl TcpTransport {
    /// Creates the transport (stateless; all state lives in the OS).
    #[must_use]
    pub fn new() -> TcpTransport {
        TcpTransport
    }
}

impl Transport for TcpTransport {
    fn listen(&self, endpoint: &str) -> Result<Box<dyn Listener>> {
        let listener = TcpListener::bind(endpoint)
            .map_err(|e| Error::Io(format!("bind {endpoint}: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::Io(format!("set_nonblocking: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| Error::Io(format!("local_addr: {e}")))?
            .to_string();
        Ok(Box::new(TcpListenerHandle { listener, local }))
    }

    fn dial(&self, endpoint: &str) -> Result<Box<dyn Connection>> {
        let stream = TcpStream::connect(endpoint)
            .map_err(|e| Error::Unavailable(format!("connect {endpoint}: {e}")))?;
        stream
            .set_nonblocking(true)
            .map_err(|e| Error::Io(format!("set_nonblocking: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| Error::Io(format!("set_nodelay: {e}")))?;
        Ok(Box::new(TcpConn {
            peer: endpoint.to_string(),
            stream,
        }))
    }
}

struct TcpListenerHandle {
    listener: TcpListener,
    local: String,
}

impl Listener for TcpListenerHandle {
    fn try_accept(&mut self) -> Result<Option<Box<dyn Connection>>> {
        match self.listener.accept() {
            Ok((stream, addr)) => {
                stream
                    .set_nonblocking(true)
                    .map_err(|e| Error::Io(format!("set_nonblocking: {e}")))?;
                stream
                    .set_nodelay(true)
                    .map_err(|e| Error::Io(format!("set_nodelay: {e}")))?;
                Ok(Some(Box::new(TcpConn {
                    peer: addr.to_string(),
                    stream,
                })))
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(Error::Unavailable(format!("accept: {e}"))),
        }
    }

    fn local_endpoint(&self) -> String {
        self.local.clone()
    }
}

struct TcpConn {
    peer: String,
    stream: TcpStream,
}

impl Connection for TcpConn {
    fn try_send(&mut self, bytes: &[u8]) -> Result<usize> {
        match self.stream.write(bytes) {
            Ok(n) => Ok(n),
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(0),
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(Error::Unavailable(format!(
                "send to {}: {e}",
                self.peer
            ))),
        }
    }

    fn try_recv(&mut self, buf: &mut [u8]) -> Result<usize> {
        match self.stream.read(buf) {
            // A zero-byte read on a readable TCP socket is EOF: the peer
            // closed its end (trait semantics reserve Ok(0) for would-block).
            Ok(0) => Err(Error::Unavailable(format!(
                "{} closed the connection",
                self.peer
            ))),
            Ok(n) => Ok(n),
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(0),
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(Error::Unavailable(format!(
                "recv from {}: {e}",
                self.peer
            ))),
        }
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn localhost_round_trip_through_a_kernel_socket() {
        let transport = TcpTransport::new();
        let mut listener = transport.listen("127.0.0.1:0").unwrap();
        let addr = listener.local_endpoint();
        assert!(addr.ends_with(|c: char| c.is_ascii_digit()));
        let mut client = transport.dial(&addr).unwrap();

        let server = loop {
            if let Some(conn) = listener.try_accept().unwrap() {
                break conn;
            }
            std::thread::yield_now();
        };
        let mut server = server;

        assert_eq!(client.try_send(b"over tcp").unwrap(), 8);
        let mut buf = [0u8; 16];
        let mut got = 0;
        while got < 8 {
            got += server.try_recv(&mut buf[got..]).unwrap();
            std::thread::yield_now();
        }
        assert_eq!(&buf[..8], b"over tcp");

        drop(client);
        // The server side eventually observes the close as Unavailable.
        let mut closed = false;
        for _ in 0..1000 {
            match server.try_recv(&mut buf) {
                Err(e) if e.is_unavailable() => {
                    closed = true;
                    break;
                }
                _ => std::thread::sleep(std::time::Duration::from_millis(1)),
            }
        }
        assert!(closed, "peer close must surface as Unavailable");
    }

    #[test]
    fn dialling_a_dead_port_is_unavailable() {
        let transport = TcpTransport::new();
        // Bind-then-drop to find a port nobody is listening on.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        assert!(transport.dial(&addr).is_err_and(|e| e.is_unavailable()));
    }
}
