//! The `TKNP` wire frame.
//!
//! Every message travels inside one frame:
//!
//! ```text
//! +-------+---------+----------+-----------------+----------+
//! | magic | version | length   | payload         | checksum |
//! | TKNP  | u16 BE  | u32 BE   | `length` bytes  | u32 BE   |
//! +-------+---------+----------+-----------------+----------+
//! ```
//!
//! The checksum is FNV-1a over the payload only (same function the storage
//! log uses, so a corrupted frame and a corrupted log record report through
//! the same [`Error::Corruption`] channel).  A frame whose `version` differs
//! from [`PROTOCOL_VERSION`] is *skipped* — its length is trusted, its
//! payload discarded — so a rolling upgrade never panics an old node, it
//! just ignores what it cannot parse.  A frame with a bad magic is a
//! [`Error::Protocol`] error: the stream is not speaking TKNP at all and the
//! session must be torn down.

use tashkent_common::{Error, Result};
use tashkent_storage::codec::checksum;

/// The four magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"TKNP";

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u16 = 1;

/// Frame overhead in bytes: magic + version + length + checksum.
pub const FRAME_OVERHEAD: usize = 4 + 2 + 4 + 4;

/// The largest payload a peer may send (16 MiB).  A length above this is
/// treated as corruption — it is far beyond any writeset batch the cluster
/// produces and protects the reader from allocating on garbage.
pub const MAX_PAYLOAD: usize = 16 << 20;

/// Encodes one payload into a complete frame at [`PROTOCOL_VERSION`].
#[must_use]
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    encode_frame_with_version(payload, PROTOCOL_VERSION)
}

/// Encodes one payload into a complete frame at an explicit protocol
/// version (tests use this to exercise the cross-version skip path).
#[must_use]
pub fn encode_frame_with_version(payload: &[u8], version: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&checksum(payload).to_be_bytes());
    out
}

/// An incremental frame decoder.
///
/// Feed it whatever bytes the transport produced ([`FrameReader::push`]) and
/// drain complete payloads ([`FrameReader::next_frame`]).  Partial frames
/// simply wait for more bytes; malformed ones return typed errors.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    skipped_versions: u64,
}

impl FrameReader {
    /// Creates an empty reader.
    #[must_use]
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Appends transport bytes to the internal buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered bytes not yet consumed by a complete frame.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// How many well-formed frames of a *different* protocol version have
    /// been skipped so far.
    #[must_use]
    pub fn skipped_versions(&self) -> u64 {
        self.skipped_versions
    }

    /// Returns the next complete payload, `None` if more bytes are needed.
    ///
    /// Frames carrying a different protocol version are skipped (counted in
    /// [`FrameReader::skipped_versions`]) and decoding continues with the
    /// next frame.
    ///
    /// # Errors
    ///
    /// * [`Error::Protocol`] — the stream does not start with the `TKNP`
    ///   magic; the connection is not speaking this protocol.
    /// * [`Error::Corruption`] — the length field is implausible or the
    ///   payload checksum does not match.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        loop {
            if self.buf.len() < FRAME_OVERHEAD {
                return Ok(None);
            }
            if self.buf[0..4] != MAGIC {
                return Err(Error::Protocol(format!(
                    "bad frame magic {:02x?} (expected {:02x?})",
                    &self.buf[0..4],
                    MAGIC
                )));
            }
            let version = u16::from_be_bytes([self.buf[4], self.buf[5]]);
            let length =
                u32::from_be_bytes([self.buf[6], self.buf[7], self.buf[8], self.buf[9]]) as usize;
            if length > MAX_PAYLOAD {
                return Err(Error::Corruption(format!(
                    "frame length {length} exceeds the {MAX_PAYLOAD}-byte maximum"
                )));
            }
            let total = FRAME_OVERHEAD + length;
            if self.buf.len() < total {
                return Ok(None);
            }
            let payload_end = 10 + length;
            let stored = u32::from_be_bytes([
                self.buf[payload_end],
                self.buf[payload_end + 1],
                self.buf[payload_end + 2],
                self.buf[payload_end + 3],
            ]);
            let computed = checksum(&self.buf[10..payload_end]);
            if stored != computed {
                return Err(Error::Corruption(format!(
                    "frame checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )));
            }
            if version != PROTOCOL_VERSION {
                // A well-formed frame from another protocol version: skip
                // it and keep decoding.
                self.skipped_versions += 1;
                self.buf.drain(0..total);
                continue;
            }
            let payload = self.buf[10..payload_end].to_vec();
            self.buf.drain(0..total);
            return Ok(Some(payload));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_across_arbitrary_splits() {
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![7], vec![0xAB; 1000]];
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend_from_slice(&encode_frame(p));
        }
        // Feed one byte at a time: partial frames must wait, never error.
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        for b in &wire {
            reader.push(&[*b]);
            while let Some(p) = reader.next_frame().unwrap() {
                out.push(p);
            }
        }
        assert_eq!(out, payloads);
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn corrupted_payload_is_a_typed_error() {
        let mut wire = encode_frame(b"hello");
        wire[12] ^= 0xFF;
        let mut reader = FrameReader::new();
        reader.push(&wire);
        assert!(matches!(reader.next_frame(), Err(Error::Corruption(_))));
    }

    #[test]
    fn bad_magic_is_a_protocol_error() {
        let mut wire = encode_frame(b"hello");
        wire[0] = b'X';
        let mut reader = FrameReader::new();
        reader.push(&wire);
        assert!(matches!(reader.next_frame(), Err(Error::Protocol(_))));
    }

    #[test]
    fn cross_version_frames_are_skipped_not_fatal() {
        let mut reader = FrameReader::new();
        reader.push(&encode_frame_with_version(b"from the future", 9));
        reader.push(&encode_frame(b"current"));
        assert_eq!(reader.next_frame().unwrap().unwrap(), b"current");
        assert_eq!(reader.skipped_versions(), 1);
    }

    #[test]
    fn implausible_length_is_corruption() {
        let mut wire = encode_frame(b"x");
        wire[6] = 0xFF; // length high byte -> ~4 GiB
        let mut reader = FrameReader::new();
        reader.push(&wire);
        assert!(matches!(reader.next_frame(), Err(Error::Corruption(_))));
    }
}
