//! The networking layer: run the Tashkent cluster over a wire.
//!
//! Every other crate in the workspace was written against in-process calls —
//! a proxy invokes its [`CertifierHandle`](tashkent_proxy::CertifierHandle)
//! and the certifier answers on the same stack.  This crate puts a real wire
//! between them without changing any of that code:
//!
//! * [`frame`] — the `TKNP` framed wire format: magic, protocol version,
//!   length prefix, FNV-1a payload checksum.  Truncated or corrupted frames
//!   surface as typed errors; frames from a different protocol version are
//!   skipped, never panicked on.
//! * [`message`] — the hand-rolled binary codec for every replica↔certifier
//!   message: certify request/decision, writeset stream fetch, status,
//!   recovery state transfer, and session control (hello, ping, goodbye).
//! * [`transport`] — the [`Transport`]/[`Listener`]/[`Connection`] traits:
//!   non-blocking, poll-based endpoints that the event loops drive.
//! * [`loopback`] — a deterministic in-memory transport whose links can be
//!   severed and healed (fault injection for partitions) — the cluster's
//!   fault harness drives it exactly like crash faults.
//! * [`tcp`] — the same trait over real non-blocking `std::net` sockets on
//!   localhost.
//! * [`session`] — the client side: [`RemoteCertifier`] runs a small event
//!   loop on its own thread (dial, handshake, per-peer send queue with
//!   backpressure, reconnect with exponential backoff, graceful close) and
//!   implements [`CertifierService`](tashkent_proxy::CertifierService), so a
//!   proxy certifies across the wire through the same handle it always used.
//! * [`server`] — the certifier side: [`NetServer`] polls one listener plus
//!   every accepted session and answers requests from the in-process
//!   certifier behind it.
//! * [`cluster_net`] — [`ClusterNet`] wires one server and one client per
//!   replica together for a whole cluster, and exposes the sever/heal hooks
//!   the fault executor calls.
//!
//! The design intentionally avoids an async runtime: the build is air-gapped
//! and the workloads are closed-loop, so a poll loop over non-blocking
//! endpoints (with a short park when idle) is both sufficient and exactly
//! reproducible under the loopback transport.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster_net;
pub mod frame;
pub mod message;
pub mod loopback;
pub mod server;
pub mod session;
pub mod tcp;
pub mod transport;

pub use cluster_net::ClusterNet;
pub use frame::{encode_frame, encode_frame_with_version, FrameReader, MAGIC, PROTOCOL_VERSION};
pub use message::{decode_message, encode_message, Envelope, Message};
pub use loopback::{LoopbackNet, LoopbackTransport};
pub use server::NetServer;
pub use session::{RemoteCertifier, SessionConfig};
pub use tcp::TcpTransport;
pub use transport::{Connection, Listener, Transport};
