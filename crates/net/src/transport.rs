//! Transport abstraction: poll-based, non-blocking byte pipes.
//!
//! The event loops ([`crate::session`], [`crate::server`]) are written
//! against these three traits only, so the in-memory loopback transport and
//! the TCP transport are interchangeable — `ClusterConfig::transport` picks
//! one and nothing above this layer changes.
//!
//! All operations are non-blocking:
//!
//! * `Ok(0)` from [`Connection::try_send`] / [`Connection::try_recv`] means
//!   *would block* — nothing was moved, poll again later.
//! * [`Error::Unavailable`](tashkent_common::Error::Unavailable) means the
//!   connection is gone (peer closed, link severed, socket reset); the
//!   caller must drop it and, if it owns the session, reconnect.

use tashkent_common::{metrics::MetricsRegistry, CounterId, Result};

use crate::frame::FrameReader;
use crate::message::{decode_message, to_frame, Envelope};

/// One established bidirectional byte stream.
pub trait Connection: Send {
    /// Attempts to write bytes; returns how many were accepted (`0` = would
    /// block).
    ///
    /// # Errors
    ///
    /// [`Error::Unavailable`](tashkent_common::Error::Unavailable) once the
    /// connection is closed or its link severed.
    fn try_send(&mut self, bytes: &[u8]) -> Result<usize>;

    /// Attempts to read bytes into `buf`; returns how many arrived (`0` =
    /// nothing available right now).
    ///
    /// # Errors
    ///
    /// [`Error::Unavailable`](tashkent_common::Error::Unavailable) once the
    /// connection is closed or its link severed.
    fn try_recv(&mut self, buf: &mut [u8]) -> Result<usize>;

    /// The peer's endpoint name (loopback) or socket address (TCP), for
    /// logs and the session table.
    fn peer(&self) -> String;
}

/// A bound accept point.
pub trait Listener: Send {
    /// Accepts one pending connection if any (`None` = would block).
    ///
    /// # Errors
    ///
    /// [`Error::Unavailable`](tashkent_common::Error::Unavailable) if the
    /// listener itself is closed.
    fn try_accept(&mut self) -> Result<Option<Box<dyn Connection>>>;

    /// The endpoint this listener is reachable at.  For TCP bound to port
    /// `0` this is the *actual* address, so clients can dial it.
    fn local_endpoint(&self) -> String;
}

/// A way of creating listeners and connections.
pub trait Transport: Send + Sync {
    /// Binds a listener at `endpoint` (a logical name for loopback, a
    /// socket address for TCP — `127.0.0.1:0` picks a free port).
    ///
    /// # Errors
    ///
    /// [`Error::Io`](tashkent_common::Error::Io) if binding fails;
    /// [`Error::InvalidConfig`](tashkent_common::Error::InvalidConfig) if
    /// the endpoint name is already taken (loopback).
    fn listen(&self, endpoint: &str) -> Result<Box<dyn Listener>>;

    /// Dials the listener at `endpoint`.
    ///
    /// # Errors
    ///
    /// [`Error::Unavailable`](tashkent_common::Error::Unavailable) if no
    /// listener answers or the link is severed.
    fn dial(&self, endpoint: &str) -> Result<Box<dyn Connection>>;
}

/// A [`Connection`] with framing and message accounting on top: the unit
/// both event loops ([`crate::session`], [`crate::server`]) actually drive.
///
/// Outbound envelopes are encoded into a staging buffer and flushed as the
/// peer accepts bytes; inbound bytes are reassembled into frames and decoded
/// into envelopes.  Byte and message counters go to the cluster's metrics
/// registry ([`CounterId::NetBytesSent`], [`CounterId::NetBytesReceived`],
/// [`CounterId::NetMessages`]).
pub struct FramedConn {
    conn: Box<dyn Connection>,
    reader: FrameReader,
    out: Vec<u8>,
}

impl FramedConn {
    /// Wraps an established connection.
    #[must_use]
    pub fn new(conn: Box<dyn Connection>) -> FramedConn {
        FramedConn {
            conn,
            reader: FrameReader::new(),
            out: Vec::new(),
        }
    }

    /// The peer's name / address.
    #[must_use]
    pub fn peer(&self) -> String {
        self.conn.peer()
    }

    /// Bytes staged but not yet accepted by the peer.
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.out.len()
    }

    /// Stages one envelope for sending (flushed by [`FramedConn::flush`]).
    pub fn queue(&mut self, envelope: &Envelope, metrics: &MetricsRegistry) {
        self.out.extend_from_slice(&to_frame(envelope));
        metrics.incr(CounterId::NetMessages);
    }

    /// Pushes staged bytes into the connection; returns `true` if any bytes
    /// moved.
    ///
    /// # Errors
    ///
    /// Propagates the connection's
    /// [`Error::Unavailable`](tashkent_common::Error::Unavailable).
    pub fn flush(&mut self, metrics: &MetricsRegistry) -> Result<bool> {
        let mut moved = false;
        while !self.out.is_empty() {
            let n = self.conn.try_send(&self.out)?;
            if n == 0 {
                break;
            }
            self.out.drain(0..n);
            metrics.add(CounterId::NetBytesSent, n as u64);
            moved = true;
        }
        Ok(moved)
    }

    /// Reads whatever the peer sent and returns the complete envelopes.
    ///
    /// # Errors
    ///
    /// Propagates connection loss, and surfaces malformed frames or
    /// messages as their typed errors — the caller tears the session down.
    pub fn poll(&mut self, metrics: &MetricsRegistry) -> Result<Vec<Envelope>> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            let n = self.conn.try_recv(&mut buf)?;
            if n == 0 {
                break;
            }
            metrics.add(CounterId::NetBytesReceived, n as u64);
            self.reader.push(&buf[..n]);
        }
        let mut envelopes = Vec::new();
        while let Some(payload) = self.reader.next_frame()? {
            let mut bytes = bytes::Bytes::from(payload);
            envelopes.push(decode_message(&mut bytes)?);
            metrics.incr(CounterId::NetMessages);
        }
        Ok(envelopes)
    }
}
