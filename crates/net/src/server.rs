//! The certifier side of the wire: [`NetServer`].
//!
//! One `NetServer` fronts one in-process certifier (a
//! [`CertifierHandle`]) with a single poll-based event loop: it accepts new
//! connections, completes handshakes, decodes request envelopes, answers
//! them from the certifier and flushes responses — all without blocking, so
//! one thread serves every replica session.  (Certification itself is an
//! in-memory intersection test — the durable log write happens on the
//! certifier's group-commit path — so a single service loop is not the
//! bottleneck at cluster-test scale.)
//!
//! Sessions appear in the event journal as
//! [`EventKind::SessionOpen`] / [`EventKind::SessionClose`] on the
//! certifier component, and in the open-sessions gauge (each side counts
//! its own end).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use parking_lot::Mutex;
use tashkent_common::{
    metrics::MetricsRegistry, Component, Event, EventKind, GaugeId, Result,
};
use tashkent_proxy::CertifierHandle;

use crate::message::{Envelope, Message};
use crate::transport::{FramedConn, Listener, Transport};

/// How long the loop parks when a tick moved nothing.
const IDLE_PARK: Duration = Duration::from_micros(100);

/// One accepted connection and its handshake state.
struct ServerSession {
    framed: FramedConn,
    /// The peer's self-declared name once the `Hello` arrived.
    node: Option<String>,
    /// Set by `Goodbye`: close once the response backlog drains.
    closing: bool,
}

/// The certifier's network front end.
pub struct NetServer {
    endpoint: String,
    name: String,
    shutdown: Arc<AtomicBool>,
    worker: Mutex<Option<thread::JoinHandle<()>>>,
}

impl NetServer {
    /// Binds `endpoint` on `transport` and starts the service loop for
    /// `handle`.  The returned server reports the *actual* endpoint (TCP
    /// port 0 resolves to the bound port).
    ///
    /// # Errors
    ///
    /// Whatever [`Transport::listen`] reports.
    pub fn start(
        name: &str,
        handle: CertifierHandle,
        transport: &dyn Transport,
        endpoint: &str,
        metrics: Arc<MetricsRegistry>,
    ) -> Result<NetServer> {
        let listener = transport.listen(endpoint)?;
        let actual = listener.local_endpoint();
        let shutdown = Arc::new(AtomicBool::new(false));
        let loop_shutdown = Arc::clone(&shutdown);
        let loop_name = name.to_string();
        let worker = thread::Builder::new()
            .name(format!("tknp-server-{name}"))
            .spawn(move || service_loop(&loop_name, &handle, listener, &metrics, &loop_shutdown))
            .expect("spawn server event loop");
        Ok(NetServer {
            endpoint: actual,
            name: name.to_string(),
            shutdown,
            worker: Mutex::new(Some(worker)),
        })
    }

    /// The endpoint clients should dial (actual TCP port, or the loopback
    /// name).
    #[must_use]
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// The server's name (handshake `HelloAck` identity).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stops the service loop and joins it.  Idempotent.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(worker) = self.worker.lock().take() {
            let _ = worker.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn service_loop(
    name: &str,
    handle: &CertifierHandle,
    mut listener: Box<dyn Listener>,
    metrics: &Arc<MetricsRegistry>,
    shutdown: &AtomicBool,
) {
    let mut sessions: Vec<ServerSession> = Vec::new();
    while !shutdown.load(Ordering::Acquire) {
        let mut moved = false;

        // Accept whatever is queued.
        while let Ok(Some(conn)) = listener.try_accept() {
            sessions.push(ServerSession {
                framed: FramedConn::new(conn),
                node: None,
                closing: false,
            });
            moved = true;
        }

        // Pump every session; collect the dead ones.
        let mut index = 0;
        while index < sessions.len() {
            match pump_one(name, handle, &mut sessions[index], metrics) {
                Ok(session_moved) => {
                    let session = &sessions[index];
                    if session.closing && session.framed.backlog() == 0 {
                        close_session(sessions.remove(index), metrics);
                        moved = true;
                    } else {
                        moved |= session_moved;
                        index += 1;
                    }
                }
                Err(_) => {
                    close_session(sessions.remove(index), metrics);
                    moved = true;
                }
            }
        }

        if !moved {
            thread::sleep(IDLE_PARK);
        }
    }
    for session in sessions.drain(..) {
        close_session(session, metrics);
    }
}

fn close_session(session: ServerSession, metrics: &Arc<MetricsRegistry>) {
    // Sessions that never completed the handshake were never counted.
    if let Some(node) = session.node {
        metrics.gauge_add(GaugeId::OpenSessions, -1);
        metrics.emit(
            Event::new(Component::Certifier, EventKind::SessionClose).node(node_index(&node)),
        );
    }
}

/// Parses the peer index out of a `replica-N` style node name (journal
/// correlation); anything else gets the "no node" sentinel.
fn node_index(node: &str) -> usize {
    node.rsplit('-')
        .next()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(usize::from(u16::MAX))
}

fn pump_one(
    name: &str,
    handle: &CertifierHandle,
    session: &mut ServerSession,
    metrics: &Arc<MetricsRegistry>,
) -> Result<bool> {
    let mut moved = session.framed.flush(metrics)?;
    for envelope in session.framed.poll(metrics)? {
        moved = true;
        let reply = match envelope.message {
            Message::Hello { node } => {
                metrics.gauge_add(GaugeId::OpenSessions, 1);
                metrics.emit(
                    Event::new(Component::Certifier, EventKind::SessionOpen)
                        .node(node_index(&node)),
                );
                session.node = Some(node);
                Some(Message::HelloAck {
                    node: name.to_string(),
                })
            }
            Message::CertifyRequest(request) => Some(match handle.certify(&request) {
                Ok(response) => Message::CertifyDecision(response),
                Err(e) => Message::ErrorReply {
                    unavailable: e.is_unavailable(),
                    detail: e.to_string(),
                },
            }),
            Message::FetchWritesets { since } => Some(Message::WritesetBatch {
                writesets: handle.writesets_after(since),
            }),
            Message::StatusRequest => Some(Message::StatusResponse {
                system_version: handle.system_version(),
                truncation_floor: handle.truncation_floor(),
                available: handle.is_available(),
            }),
            Message::StateTransferRequest => Some(Message::StateTransferResponse {
                checkpoint: handle
                    .as_single()
                    .and_then(|certifier| certifier.latest_checkpoint_payload()),
            }),
            Message::Ping => Some(Message::Pong),
            Message::Goodbye => {
                session.closing = true;
                None
            }
            // Responses arriving at the server are a peer bug; answer with
            // a typed error instead of tearing the session down.
            other => Some(Message::ErrorReply {
                unavailable: false,
                detail: format!("unexpected {} at the certifier", other.label()),
            }),
        };
        if let Some(message) = reply {
            session.framed.queue(
                &Envelope {
                    request_id: envelope.request_id,
                    message,
                },
                metrics,
            );
        }
    }
    session.framed.flush(metrics)?;
    Ok(moved)
}
