//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes` API used by the Tashkent storage
//! codecs: [`Bytes`] / [`BytesMut`] buffers plus the [`Buf`] / [`BufMut`]
//! accessor traits, all big-endian like the real crate.  [`Bytes`] here is a
//! plain owned vector with a read cursor rather than a refcounted slice —
//! the zero-copy machinery of the real crate is not needed by this
//! repository and is deliberately omitted.  Swap this path dependency for
//! the crates.io package when network access is available.

#![forbid(unsafe_code)]

/// Read access to a byte cursor, big-endian.
pub trait Buf {
    /// Number of bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads the next `n` bytes, advancing the cursor.
    fn copy_to_bytes(&mut self, n: usize) -> Vec<u8>;
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize) {
        let _ = self.copy_to_bytes(n);
    }
    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_to_bytes(1)[0]
    }
    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.copy_to_bytes(2).try_into().unwrap())
    }
    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.copy_to_bytes(4).try_into().unwrap())
    }
    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.copy_to_bytes(8).try_into().unwrap())
    }
    /// Reads a big-endian `i32`.
    fn get_i32(&mut self) -> i32 {
        i32::from_be_bytes(self.copy_to_bytes(4).try_into().unwrap())
    }
    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.copy_to_bytes(8).try_into().unwrap())
    }
    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.copy_to_bytes(8).try_into().unwrap())
    }
}

/// Write access to a growable byte buffer, big-endian.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// An owned, immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub const fn new() -> Self {
        Self { data: Vec::new(), pos: 0 }
    }

    /// Copies `src` into a new buffer.
    #[must_use]
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Self { data: src.to_vec(), pos: 0 }
    }

    /// Creates a buffer from a static slice (copied here; the real crate
    /// borrows it zero-copy).
    #[must_use]
    pub fn from_static(src: &'static [u8]) -> Self {
        Self::copy_from_slice(src)
    }

    /// Returns a new buffer over `range` of the unread bytes.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds of the unread view.
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::copy_from_slice(&self.as_slice()[range])
    }

    /// Number of unread bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` if every byte has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits off the next `n` unread bytes into a new `Bytes`, advancing
    /// this cursor past them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    #[must_use]
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let out = Bytes::copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        out
    }

    /// Copies the unread bytes into a fresh vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    /// The unread bytes as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, n: usize) -> Vec<u8> {
        assert!(n <= self.len(), "buffer underflow");
        let out = self.data[self.pos..self.pos + n].to_vec();
        self.pos += n;
        out
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Self::copy_from_slice(src)
    }
}

/// A growable byte buffer for building encoded frames.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub const fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// An empty buffer with `capacity` bytes preallocated.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self { data: Vec::with_capacity(capacity) }
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends raw bytes (alias of [`BufMut::put_slice`]).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts the written bytes into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// The written bytes as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(buf: BytesMut) -> Self {
        buf.data
    }
}
