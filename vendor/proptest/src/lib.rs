//! Offline stand-in for the `proptest` crate.
//!
//! The air-gapped build cannot fetch the real `proptest`, so this crate
//! implements the subset its property tests use: the [`proptest!`] macro
//! (with an optional `#![proptest_config(...)]` header), range / tuple /
//! `prop::collection::vec` strategies, [`strategy::Strategy::prop_map`], and
//! the `prop_assert*` macros.  Cases are generated from a deterministic
//! per-test seed so failures are reproducible; set `PROPTEST_SEED` to an
//! integer to explore a different sequence.  Unlike the real crate there is
//! **no shrinking** — a failing case panics with the standard assertion
//! message and the values involved must be read from the panic payload.
//! Swap this path dependency for the crates.io package when network access
//! is available; the test sources need no changes.

#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of an output type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for vectors of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.start..self.size.end)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration and RNG plumbing used by [`proptest!`].
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` generated cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic per-test RNG; `PROPTEST_SEED` perturbs the sequence.
    #[must_use]
    pub fn rng_for(test_name: &str) -> StdRng {
        // FNV-1a over the test name gives each test its own stream.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = seed.parse::<u64>() {
                hash = hash.wrapping_add(seed);
            }
        }
        StdRng::seed_from_u64(hash)
    }
}

/// Everything a property-test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of the real prelude's `prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::rng_for(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                $body
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// `assert!` under a name the real proptest exports (no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// `assert_eq!` under a name the real proptest exports.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// `assert_ne!` under a name the real proptest exports.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}
