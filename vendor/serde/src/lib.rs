//! Offline stand-in for the `serde` facade crate.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derive macros from the
//! sibling `serde_derive` stub.  See that crate's documentation for why
//! these exist.  No serialisation traits are defined because nothing in the
//! repository takes `T: Serialize` bounds or calls serde entry points — the
//! derives are forward-looking annotations only.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
