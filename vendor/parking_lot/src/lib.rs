//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository is air-gapped, so the real
//! `parking_lot` cannot be fetched from crates.io.  This crate implements the
//! subset of its API that the Tashkent reproduction uses — [`Mutex`],
//! [`RwLock`] and [`Condvar`] with non-poisoning guards — as thin wrappers
//! over `std::sync`.  Poison errors are swallowed (`parking_lot` has no
//! poisoning), which matches the semantics the calling code was written
//! against.  Swap this path dependency for the real crates.io package when
//! network access is available; no call sites need to change.

#![forbid(unsafe_code)]

use std::sync;
use std::time::Duration;

/// A mutual-exclusion primitive whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
///
/// Wraps the std guard in an `Option` so that [`Condvar::wait`] can move the
/// inner guard out and back in across the blocking call.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(sync::PoisonError::into_inner),
        ))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(Some(guard))),
            Err(sync::TryLockError::Poisoned(poisoned)) => {
                Some(MutexGuard(Some(poisoned.into_inner())))
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during condvar wait")
    }
}

/// A reader-writer lock whose `read`/`write` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Result of a bounded wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with this crate's [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Blocks until the condvar is notified, releasing `guard` while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken during condvar wait");
        let inner = self
            .0
            .wait(inner)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken during condvar wait");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}
