//! Offline stand-in for `serde_derive`.
//!
//! The air-gapped build cannot fetch the real `serde` / `serde_derive`, and
//! nothing in the Tashkent reproduction actually serialises through serde
//! yet — the `#[derive(Serialize, Deserialize)]` annotations exist so that
//! the types are ready for a future wire format or JSON export.  These
//! derives therefore accept the same syntax (including `#[serde(...)]`
//! helper attributes) and expand to nothing.  When the real serde is
//! restored as a dependency, the annotations become live without any source
//! changes.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
