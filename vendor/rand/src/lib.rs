//! Offline stand-in for the `rand` crate.
//!
//! The build environment is air-gapped, so the real `rand` cannot be fetched
//! from crates.io.  This crate provides the subset the Tashkent reproduction
//! uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.  The
//! generator is xoshiro256++ seeded through splitmix64 — deterministic for a
//! given seed, which is all the workloads and simulator require (they use
//! fixed seeds for reproducible experiments).  Distribution details differ
//! from the real `rand`, so exact value sequences will change if this is
//! swapped for the crates.io package; nothing in the repository depends on
//! the specific sequences.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = self.end.abs_diff(self.start) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range called with empty range");
                let span = end.abs_diff(start) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256++ here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias of [`StdRng`]; the real crate's small generator is not needed.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
