//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the slice of the criterion 0.5 API that the `tashkent-bench`
//! targets use — [`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! `sample_size` / `throughput` / `bench_function` / `bench_with_input`,
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a simple
//! wall-clock timer.  Each benchmark runs a short warm-up, then `sample_size`
//! timed samples, and prints mean / best per-iteration times to stdout.  No
//! statistical analysis, plotting or baseline comparison is performed; swap
//! this path dependency for the crates.io package when network access is
//! available to get the real machinery.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self { name: format!("{function_name}/{parameter}") }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Throughput annotation for a benchmark (recorded, echoed in the report).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, repeating it enough to collect the configured number
    /// of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call, also used to size the per-sample
        // iteration count so very fast routines are measured in batches.
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed();
        let target = Duration::from_millis(5);
        self.iters_per_sample = if once.is_zero() {
            1000
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 100_000) as u64
        };
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|s| s.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let best = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        // Median over samples: the robust center on noisy shared machines,
        // where a few descheduled samples can double the mean.
        let median = {
            let mut sorted = per_iter.clone();
            sorted.sort_by(f64::total_cmp);
            let mid = sorted.len() / 2;
            if sorted.len().is_multiple_of(2) {
                (sorted[mid - 1] + sorted[mid]) / 2.0
            } else {
                sorted[mid]
            }
        };
        let extra = match throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  {:.0} elem/s", n as f64 / median)
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!("  {:.0} B/s", n as f64 / median)
            }
            _ => String::new(),
        };
        println!(
            "{label:<40} median {:>12}  mean {:>12}  best {:>12}{extra}",
            format_time(median),
            format_time(mean),
            format_time(best),
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    smoke: bool,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (clamped to 2 in
    /// `--smoke` mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = if self.smoke { n.clamp(1, 2) } else { n.max(1) };
        self
    }

    /// Sets the throughput used to annotate subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the target measurement time (accepted, ignored).
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F, I>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
        I: fmt::Display,
    {
        let label = format!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&label, self.throughput);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<F, I>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
        I: ?Sized,
    {
        let label = format!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.report(&label, self.throughput);
        self
    }

    /// Finishes the group.
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: usize,
    smoke: bool,
}

impl Criterion {
    /// Accepts command-line configuration.  The stub understands one flag of
    /// its own: `--smoke` (as in `cargo bench -- --smoke`) clamps every
    /// benchmark to two samples so CI can execute all bench code in seconds
    /// without producing meaningful numbers.  Real criterion flags are
    /// accepted and ignored.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.smoke = std::env::args().any(|a| a == "--smoke");
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let mut sample_size = if self.default_sample_size == 0 {
            20
        } else {
            self.default_sample_size
        };
        if self.smoke {
            sample_size = sample_size.min(2);
        }
        let smoke = self.smoke;
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            sample_size,
            smoke,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name).bench_function("run", f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
